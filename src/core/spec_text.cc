#include "core/spec_text.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/string_util.h"

namespace lsbench {

namespace {

/// Upper bound on eagerly generated dataset sizes. Specs are untrusted
/// input (the fuzz tests feed mutated bytes straight into the parser); a
/// mangled num_keys must produce an error Status, not a multi-gigabyte
/// allocation inside BuildDataset.
constexpr uint64_t kMaxSpecDatasetKeys = uint64_t{1} << 22;

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<double> ParseDouble(const std::string& value,
                           const std::string& key) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  // strtod happily accepts "inf"/"nan" (and huge exponents overflow to
  // inf); a spec number must be finite or every downstream computation is
  // poisoned.
  if (end == value.c_str() || *end != '\0' || !std::isfinite(v)) {
    return Status::InvalidArgument("bad number for '" + key + "': " + value);
  }
  return v;
}

Result<uint64_t> ParseU64(const std::string& value, const std::string& key) {
  // strtoull silently wraps negatives ("-1" parses as 2^64-1) and saturates
  // overflow; require pure digits and check ERANGE explicitly.
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad integer for '" + key + "': " + value);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("bad integer for '" + key + "': " + value);
  }
  return static_cast<uint64_t>(v);
}

/// ParseU64 plus a uint32 range check — for keys the spec structs store
/// narrow (workers, retries, scan_length, ...), where a silent truncating
/// cast would accept "4294967297" as 1.
Result<uint32_t> ParseU32(const std::string& value, const std::string& key) {
  const Result<uint64_t> v = ParseU64(value, key);
  if (!v.ok()) return v.status();
  if (v.value() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("value out of range for '" + key +
                                   "': " + value);
  }
  return static_cast<uint32_t>(v.value());
}

/// Parses a duration in coarse units (ms/us) and scales it to nanoseconds,
/// rejecting values whose scaled form overflows int64.
Result<int64_t> ParseScaledNanos(const std::string& value,
                                 const std::string& key, int64_t scale) {
  const Result<uint64_t> v = ParseU64(value, key);
  if (!v.ok()) return v.status();
  const uint64_t limit = static_cast<uint64_t>(
      std::numeric_limits<int64_t>::max() / scale);
  if (v.value() > limit) {
    return Status::InvalidArgument("duration out of range for '" + key +
                                   "': " + value);
  }
  return static_cast<int64_t>(v.value()) * scale;
}

Result<bool> ParseBool(const std::string& value, const std::string& key) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  return Status::InvalidArgument("bad bool for '" + key + "': " + value);
}

Result<int64_t> ParseI64(const std::string& value, const std::string& key) {
  const bool negative = !value.empty() && value.front() == '-';
  const std::string digits = negative ? value.substr(1) : value;
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad integer for '" + key + "': " + value);
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("bad integer for '" + key + "': " + value);
  }
  return static_cast<int64_t>(v);
}

Result<StatusCode> ParseFailCode(const std::string& value) {
  if (value == "unavailable") return StatusCode::kUnavailable;
  if (value == "timeout") return StatusCode::kTimeout;
  if (value == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (value == "io_error") return StatusCode::kIoError;
  if (value == "internal") return StatusCode::kInternal;
  return Status::InvalidArgument("unknown fault code: " + value);
}

std::string FailCodeToSpecString(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kIoError:
      return "io_error";
    default:
      return "internal";
  }
}

/// Shortest decimal representation that strtod round-trips exactly.
std::string FullDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it round-trips (keeps specs readable).
  for (int precision = 1; precision <= 16; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, v);
    if (std::strtod(candidate, nullptr) == v) return candidate;
  }
  return buf;
}

/// Accumulated description of one [dataset] section.
struct DatasetDesc {
  std::string kind = "uniform";
  size_t num_keys = 100000;
  uint64_t seed = 42;
  double param1 = 0.0;
  double param2 = 0.0;
};

Result<Dataset> BuildDataset(const DatasetDesc& desc) {
  if (desc.num_keys == 0) {
    return Status::InvalidArgument("dataset num_keys must be > 0");
  }
  if (desc.num_keys > kMaxSpecDatasetKeys) {
    return Status::InvalidArgument(
        "dataset num_keys too large: " + std::to_string(desc.num_keys) +
        " (max " + std::to_string(kMaxSpecDatasetKeys) + ")");
  }
  if (desc.kind == "emails") {
    return GenerateEmailDataset(desc.num_keys, desc.seed);
  }
  DatasetOptions options;
  options.num_keys = desc.num_keys;
  options.seed = desc.seed;
  std::unique_ptr<UnitDistribution> dist;
  if (desc.kind == "uniform") {
    dist = MakeUniform();
  } else if (desc.kind == "gaussian") {
    dist = MakeGaussian(desc.param1 > 0 ? desc.param1 : 0.5,
                        desc.param2 > 0 ? desc.param2 : 0.1);
  } else if (desc.kind == "lognormal") {
    dist = MakeLognormal(desc.param1, desc.param2 > 0 ? desc.param2 : 1.0);
  } else if (desc.kind == "pareto") {
    dist = MakePareto(desc.param1 > 0 ? desc.param1 : 1.5);
  } else if (desc.kind == "clustered") {
    // param1 is a cluster count; the cast to int is UB for huge doubles,
    // so bound it before converting.
    if (desc.param1 > 65536.0) {
      return Status::InvalidArgument("clustered param1 (cluster count) too "
                                     "large");
    }
    dist = MakeClustered(desc.param1 > 0 ? static_cast<int>(desc.param1) : 8,
                         desc.param2 > 0 ? desc.param2 : 0.01, desc.seed);
  } else {
    return Status::InvalidArgument("unknown dataset kind: " + desc.kind);
  }
  return GenerateDataset(*dist, options);
}

Status ParseMix(const std::string& value, OperationMix* mix) {
  // `mix` names only the scalar op classes; batch fractions live in the
  // separate `batch_mix` key. Preserve them so the two keys compose in
  // either file order.
  const double batch_get = mix->batch_get;
  const double batch_put = mix->batch_put;
  *mix = OperationMix();
  mix->get = 0.0;
  mix->batch_get = batch_get;
  mix->batch_put = batch_put;
  for (const std::string& part : Split(value, ',')) {
    const std::vector<std::string> kv = Split(Trim(part), ':');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad mix component: " + part);
    }
    const Result<double> frac = ParseDouble(Trim(kv[1]), "mix");
    if (!frac.ok()) return frac.status();
    const std::string op = Trim(kv[0]);
    if (op == "get") {
      mix->get = frac.value();
    } else if (op == "scan") {
      mix->scan = frac.value();
    } else if (op == "insert") {
      mix->insert = frac.value();
    } else if (op == "update") {
      mix->update = frac.value();
    } else if (op == "delete") {
      mix->del = frac.value();
    } else if (op == "range_count") {
      mix->range_count = frac.value();
    } else {
      return Status::InvalidArgument("unknown op in mix: " + op);
    }
  }
  return Status::OK();
}

/// Parses the `batch_mix` key: comma-separated `batch_get:frac` /
/// `batch_put:frac` components. Touches only the batch fractions, so it
/// composes with `mix` in either file order.
Status ParseBatchMix(const std::string& value, OperationMix* mix) {
  mix->batch_get = 0.0;
  mix->batch_put = 0.0;
  for (const std::string& part : Split(value, ',')) {
    const std::vector<std::string> kv = Split(Trim(part), ':');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad batch_mix component: " + part);
    }
    const Result<double> frac = ParseDouble(Trim(kv[1]), "batch_mix");
    if (!frac.ok()) return frac.status();
    if (frac.value() < 0.0) {
      return Status::InvalidArgument("batch_mix fraction must be >= 0, got " +
                                     Trim(kv[1]));
    }
    const std::string op = Trim(kv[0]);
    if (op == "batch_get") {
      mix->batch_get = frac.value();
    } else if (op == "batch_put") {
      mix->batch_put = frac.value();
    } else {
      return Status::InvalidArgument("unknown op in batch_mix: " + op);
    }
  }
  return Status::OK();
}

Result<AccessPattern> ParseAccess(const std::string& value) {
  if (value == "uniform") return AccessPattern::kUniform;
  if (value == "zipfian") return AccessPattern::kZipfian;
  if (value == "hotspot") return AccessPattern::kHotSpot;
  if (value == "latest") return AccessPattern::kLatest;
  if (value == "sequential") return AccessPattern::kSequential;
  return Status::InvalidArgument("unknown access pattern: " + value);
}

Result<ArrivalPattern> ParseArrival(const std::string& value) {
  if (value == "closed") return ArrivalPattern::kClosedLoop;
  if (value == "poisson") return ArrivalPattern::kPoisson;
  if (value == "diurnal") return ArrivalPattern::kDiurnal;
  if (value == "bursty") return ArrivalPattern::kBursty;
  if (value == "constant") return ArrivalPattern::kConstant;
  return Status::InvalidArgument("unknown arrival pattern: " + value);
}

Result<OverloadPolicy> ParseOverloadPolicy(const std::string& value) {
  if (value == "drop_newest") return OverloadPolicy::kDropNewest;
  if (value == "drop_oldest") return OverloadPolicy::kDropOldest;
  if (value == "slo_shed") return OverloadPolicy::kSloShed;
  return Status::InvalidArgument("unknown overload policy: " + value);
}

Result<TransitionKind> ParseTransition(const std::string& value) {
  if (value == "abrupt") return TransitionKind::kAbrupt;
  if (value == "linear") return TransitionKind::kLinear;
  if (value == "cosine") return TransitionKind::kCosine;
  return Status::InvalidArgument("unknown transition kind: " + value);
}

// Spec-token renderers, the exact inverses of the Parse* functions above
// (ToString helpers elsewhere use display names, not spec tokens).

std::string AccessToSpecString(AccessPattern access) {
  switch (access) {
    case AccessPattern::kUniform:
      return "uniform";
    case AccessPattern::kZipfian:
      return "zipfian";
    case AccessPattern::kHotSpot:
      return "hotspot";
    case AccessPattern::kLatest:
      return "latest";
    case AccessPattern::kSequential:
      return "sequential";
  }
  return "uniform";
}

std::string ArrivalToSpecString(ArrivalPattern arrival) {
  switch (arrival) {
    case ArrivalPattern::kClosedLoop:
      return "closed";
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kConstant:
      return "constant";
  }
  return "closed";
}

std::string TransitionToSpecString(TransitionKind kind) {
  switch (kind) {
    case TransitionKind::kAbrupt:
      return "abrupt";
    case TransitionKind::kLinear:
      return "linear";
    case TransitionKind::kCosine:
      return "cosine";
  }
  return "abrupt";
}

/// Spec names (run, phase) become comment-stripped, trimmed single lines on
/// reparse; reject the characters the renderer cannot round-trip.
Status CheckRenderableName(const std::string& name, const char* what) {
  if (name.find('#') != std::string::npos ||
      name.find('\n') != std::string::npos ||
      name.find('\r') != std::string::npos) {
    return Status::InvalidArgument(
        std::string(what) + " name contains '#' or a newline and cannot be "
        "rendered as spec text: " + name);
  }
  return Status::OK();
}

}  // namespace

Result<RunSpec> ParseRunSpecText(const std::string& text) {
  RunSpec spec;
  enum class Section {
    kTop,
    kDataset,
    kPhase,
    kFaults,
    kResilience,
    kExecution,
    kObservability,
    kService,
    kDrift
  };
  Section section = Section::kTop;
  DatasetDesc dataset_desc;
  bool dataset_open = false;
  PhaseSpec phase;
  bool phase_open = false;
  size_t phase_line = 0;    // line of the open phase's [phase] header
  size_t arrival_line = 0;  // last arrival / arrival_qps key in that phase
  FaultWindow fault_window;
  bool fault_window_open = false;

  auto close_dataset = [&]() -> Status {
    if (!dataset_open) return Status::OK();
    Result<Dataset> ds = BuildDataset(dataset_desc);
    if (!ds.ok()) return ds.status();
    spec.datasets.push_back(std::move(ds).value());
    // Keep the generation parameters alongside the generated keys so the
    // spec can be rendered back to text (RenderRunSpecText).
    DatasetSourceSpec source;
    source.kind = dataset_desc.kind;
    source.num_keys = dataset_desc.num_keys;
    source.seed = dataset_desc.seed;
    source.param1 = dataset_desc.param1;
    source.param2 = dataset_desc.param2;
    spec.dataset_sources.push_back(std::move(source));
    dataset_desc = DatasetDesc();
    dataset_open = false;
    return Status::OK();
  };
  auto close_phase = [&]() -> Status {
    if (!phase_open) return Status::OK();
    // Arrival parameters interact (an open-loop pattern needs a rate, but
    // keys arrive in any order), so the combined check runs when the phase
    // closes — pointed back at the offending line.
    if (const Status st = ValidateArrivalParams(
            phase.arrival, phase.arrival_rate_qps, phase.arrival_amplitude,
            phase.arrival_period_seconds);
        !st.ok()) {
      const size_t at = arrival_line != 0 ? arrival_line : phase_line;
      return Status::InvalidArgument("line " + std::to_string(at) + ": " +
                                     st.message());
    }
    spec.phases.push_back(phase);
    phase = PhaseSpec();
    phase_open = false;
    arrival_line = 0;
    return Status::OK();
  };
  auto close_fault_window = [&]() -> Status {
    if (!fault_window_open) return Status::OK();
    // An all-default window is a no-op carrier for plan-level keys
    // (seed / load_failures) and is not recorded.
    if (!(fault_window == FaultWindow())) {
      spec.faults.windows.push_back(fault_window);
    }
    fault_window = FaultWindow();
    fault_window_open = false;
    return Status::OK();
  };
  auto close_sections = [&]() -> Status {
    LSBENCH_RETURN_IF_ERROR(close_dataset());
    LSBENCH_RETURN_IF_ERROR(close_phase());
    return close_fault_window();
  };

  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = raw_line;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    if (line == "[dataset]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kDataset;
      dataset_open = true;
      continue;
    }
    if (line == "[phase]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kPhase;
      phase_open = true;
      phase_line = line_no;
      continue;
    }
    if (line == "[faults]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kFaults;
      fault_window_open = true;
      continue;
    }
    if (line == "[resilience]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kResilience;
      continue;
    }
    if (line == "[execution]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kExecution;
      continue;
    }
    if (line == "[observability]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kObservability;
      continue;
    }
    if (line == "[service]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kService;
      continue;
    }
    if (line == "[drift]") {
      LSBENCH_RETURN_IF_ERROR(close_sections());
      section = Section::kDrift;
      spec.drift.declared = true;
      continue;
    }
    if (line.front() == '[') {
      return Status::InvalidArgument("unknown section at line " +
                                     std::to_string(line_no) + ": " + line);
    }

    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key = value at line " +
                                     std::to_string(line_no));
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));

    switch (section) {
      case Section::kTop: {
        if (key == "name") {
          spec.name = value;
        } else if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.seed = v.value();
        } else if (key == "interval_ms") {
          const auto v = ParseScaledNanos(value, key, 1000000);
          if (!v.ok()) return v.status();
          spec.interval_nanos = v.value();
        } else if (key == "boxplot_sample_ms") {
          const auto v = ParseScaledNanos(value, key, 1000000);
          if (!v.ok()) return v.status();
          spec.boxplot_sample_nanos = v.value();
        } else if (key == "offline_training") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          spec.offline_training = v.value();
        } else if (key == "sla_ms") {
          const auto v = ParseScaledNanos(value, key, 1000000);
          if (!v.ok()) return v.status();
          spec.sla.threshold_nanos = v.value();
        } else if (key == "sla_auto_percentile") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          spec.sla.auto_percentile = v.value();
        } else if (key == "sla_auto_margin") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          spec.sla.auto_margin = v.value();
        } else if (key == "adjustment_window_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.adjustment_window_ops = v.value();
        } else if (key == "fault_seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.faults.seed = v.value();
        } else if (key == "fault_load_failures") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          spec.faults.load_failures = v.value();
        } else {
          return Status::InvalidArgument("unknown top-level key: " + key);
        }
        break;
      }
      case Section::kDataset: {
        if (key == "kind") {
          dataset_desc.kind = value;
        } else if (key == "num_keys") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.num_keys = v.value();
        } else if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.seed = v.value();
        } else if (key == "param1") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.param1 = v.value();
        } else if (key == "param2") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          dataset_desc.param2 = v.value();
        } else {
          return Status::InvalidArgument("unknown dataset key: " + key);
        }
        break;
      }
      case Section::kPhase: {
        if (key == "name") {
          phase.name = value;
        } else if (key == "dataset") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          if (v.value() >
              static_cast<uint32_t>(std::numeric_limits<int32_t>::max())) {
            return Status::InvalidArgument("dataset index out of range: " +
                                           value);
          }
          phase.dataset_index = static_cast<int>(v.value());
        } else if (key == "ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.num_operations = v.value();
        } else if (key == "mix") {
          LSBENCH_RETURN_IF_ERROR(ParseMix(value, &phase.mix));
        } else if (key == "access") {
          const auto v = ParseAccess(value);
          if (!v.ok()) return v.status();
          phase.access = v.value();
        } else if (key == "access_param") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.access_param = v.value();
        } else if (key == "access_param2") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.access_param2 = v.value();
        } else if (key == "arrival") {
          const auto v = ParseArrival(value);
          if (!v.ok()) return v.status();
          phase.arrival = v.value();
          if (arrival_line == 0) arrival_line = line_no;
        } else if (key == "arrival_qps") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          if (v.value() < 0.0) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_no) +
                ": arrival_qps must be >= 0, got " + value);
          }
          phase.arrival_rate_qps = v.value();
          arrival_line = line_no;
        } else if (key == "arrival_amplitude") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          if (v.value() < 0.0 || v.value() >= 1.0) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_no) +
                ": arrival_amplitude must be in [0, 1), got " + value);
          }
          phase.arrival_amplitude = v.value();
        } else if (key == "arrival_period_s") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          if (v.value() <= 0.0) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_no) +
                ": arrival_period_s must be > 0, got " + value);
          }
          phase.arrival_period_seconds = v.value();
        } else if (key == "transition") {
          const auto v = ParseTransition(value);
          if (!v.ok()) return v.status();
          phase.transition_in = v.value();
        } else if (key == "transition_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          phase.transition_operations = v.value();
        } else if (key == "holdout") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          phase.holdout = v.value();
        } else if (key == "scan_length") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          phase.scan_length = v.value();
        } else if (key == "range_selectivity") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          phase.range_selectivity = v.value();
        } else if (key == "batch_size") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          if (v.value() < 1 || v.value() > 4096) {
            return Status::InvalidArgument(
                "line " + std::to_string(line_no) +
                ": batch_size must be in [1, 4096], got " + value);
          }
          phase.batch_size = v.value();
        } else if (key == "batch_mix") {
          if (const Status st = ParseBatchMix(value, &phase.mix); !st.ok()) {
            return Status::InvalidArgument("line " +
                                           std::to_string(line_no) + ": " +
                                           st.message());
          }
        } else {
          return Status::InvalidArgument("unknown phase key: " + key);
        }
        break;
      }
      case Section::kFaults: {
        if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          spec.faults.seed = v.value();
        } else if (key == "load_failures") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          spec.faults.load_failures = v.value();
        } else if (key == "phase") {
          const auto v = ParseI64(value, key);
          if (!v.ok()) return v.status();
          if (v.value() < std::numeric_limits<int32_t>::min() ||
              v.value() > std::numeric_limits<int32_t>::max()) {
            return Status::InvalidArgument("fault phase out of range: " +
                                           value);
          }
          fault_window.phase = static_cast<int32_t>(v.value());
        } else if (key == "execute_fail_rate") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          fault_window.execute_fail_rate = v.value();
        } else if (key == "execute_fail_code") {
          const auto v = ParseFailCode(value);
          if (!v.ok()) return v.status();
          fault_window.execute_fail_code = v.value();
        } else if (key == "latency_spike_rate") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          fault_window.latency_spike_rate = v.value();
        } else if (key == "latency_spike_us") {
          const auto v = ParseScaledNanos(value, key, 1000);
          if (!v.ok()) return v.status();
          fault_window.latency_spike_nanos = v.value();
        } else if (key == "stall_rate") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          fault_window.stall_rate = v.value();
        } else if (key == "stall_us") {
          const auto v = ParseScaledNanos(value, key, 1000);
          if (!v.ok()) return v.status();
          fault_window.stall_nanos = v.value();
        } else if (key == "fail_train") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          fault_window.fail_train = v.value();
        } else if (key == "train_hang_us") {
          const auto v = ParseScaledNanos(value, key, 1000);
          if (!v.ok()) return v.status();
          fault_window.train_hang_nanos = v.value();
        } else {
          return Status::InvalidArgument("unknown faults key: " + key);
        }
        break;
      }
      case Section::kResilience: {
        ResilienceSpec& r = spec.resilience;
        if (key == "op_timeout_us") {
          const auto v = ParseScaledNanos(value, key, 1000);
          if (!v.ok()) return v.status();
          r.op_timeout_nanos = v.value();
        } else if (key == "max_retries") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          r.max_retries = v.value();
        } else if (key == "backoff_initial_us") {
          const auto v = ParseScaledNanos(value, key, 1000);
          if (!v.ok()) return v.status();
          r.backoff_initial_nanos = v.value();
        } else if (key == "backoff_multiplier") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          r.backoff_multiplier = v.value();
        } else if (key == "backoff_max_us") {
          const auto v = ParseScaledNanos(value, key, 1000);
          if (!v.ok()) return v.status();
          r.backoff_max_nanos = v.value();
        } else if (key == "backoff_jitter") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          r.backoff_jitter = v.value();
        } else if (key == "breaker_enabled") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          r.breaker_enabled = v.value();
        } else if (key == "breaker_window_ops") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          r.breaker_window_ops = v.value();
        } else if (key == "breaker_threshold") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          r.breaker_failure_threshold = v.value();
        } else if (key == "breaker_cooldown_us") {
          const auto v = ParseScaledNanos(value, key, 1000);
          if (!v.ok()) return v.status();
          r.breaker_cooldown_nanos = v.value();
        } else if (key == "breaker_halfopen_probes") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          r.breaker_half_open_probes = v.value();
        } else {
          return Status::InvalidArgument("unknown resilience key: " + key);
        }
        break;
      }
      case Section::kExecution: {
        if (key == "workers") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          spec.execution.workers = v.value();
        } else {
          return Status::InvalidArgument("unknown execution key: " + key);
        }
        break;
      }
      case Section::kObservability: {
        ObservabilitySpec& o = spec.observability;
        if (key == "trace") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          o.trace = v.value();
        } else if (key == "profile") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          o.profile = v.value();
        } else if (key == "metrics") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          o.metrics = v.value();
        } else {
          return Status::InvalidArgument("unknown observability key: " + key);
        }
        break;
      }
      case Section::kService: {
        ServiceSpec& s = spec.service;
        if (key == "enabled") {
          const auto v = ParseBool(value, key);
          if (!v.ok()) return v.status();
          s.enabled = v.value();
        } else if (key == "queue_capacity") {
          const auto v = ParseU32(value, key);
          if (!v.ok()) return v.status();
          s.queue_capacity = v.value();
        } else if (key == "policy") {
          const auto v = ParseOverloadPolicy(value);
          if (!v.ok()) return v.status();
          s.policy = v.value();
        } else if (key == "slo_p99_ms") {
          const auto v = ParseScaledNanos(value, key, 1000000);
          if (!v.ok()) return v.status();
          s.slo_p99_nanos = v.value();
        } else if (key == "max_shed_fraction") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          s.max_shed_fraction = v.value();
        } else {
          return Status::InvalidArgument("unknown service key: " + key);
        }
        break;
      }
      case Section::kDrift: {
        DriftSpec& d = spec.drift;
        if (key == "trajectory") {
          d.trajectory.clear();
          if (!value.empty()) {
            for (const std::string& part : Split(value, ',')) {
              const auto v = ParseDouble(Trim(part), key);
              if (!v.ok()) return v.status();
              d.trajectory.push_back(v.value());
            }
          }
        } else if (key == "tolerance") {
          const auto v = ParseDouble(value, key);
          if (!v.ok()) return v.status();
          d.tolerance = v.value();
        } else if (key == "sample_ops") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          d.sample_ops = v.value();
        } else if (key == "seed") {
          const auto v = ParseU64(value, key);
          if (!v.ok()) return v.status();
          d.seed = v.value();
        } else {
          return Status::InvalidArgument("unknown drift key: " + key);
        }
        break;
      }
    }
  }
  LSBENCH_RETURN_IF_ERROR(close_sections());
  LSBENCH_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

std::string RenderResilienceText(const RunSpec& spec) {
  std::string out;
  const FaultPlan defaults_plan;
  const ResilienceSpec defaults_res;
  auto emit = [&](const std::string& line) {
    out += line;
    out += '\n';
  };
  auto emit_u64 = [&](const char* key, uint64_t v) {
    emit(std::string(key) + " = " + std::to_string(v));
  };
  auto emit_us = [&](const char* key, int64_t nanos) {
    emit(std::string(key) + " = " + std::to_string(nanos / 1000));
  };
  auto emit_dbl = [&](const char* key, double v) {
    emit(std::string(key) + " = " + FullDouble(v));
  };
  auto emit_bool = [&](const char* key, bool v) {
    emit(std::string(key) + std::string(v ? " = true" : " = false"));
  };

  if (!spec.faults.Empty() || spec.faults.seed != defaults_plan.seed) {
    // Plan-level keys ride in the first [faults] section so the rendered
    // text can be appended to any spec; an all-default carrier section is
    // dropped again on parse.
    bool plan_keys_pending = spec.faults.seed != defaults_plan.seed ||
                             spec.faults.load_failures != 0;
    auto emit_plan_keys = [&]() {
      if (!plan_keys_pending) return;
      if (spec.faults.seed != defaults_plan.seed) {
        emit_u64("seed", spec.faults.seed);
      }
      if (spec.faults.load_failures != 0) {
        emit_u64("load_failures", spec.faults.load_failures);
      }
      plan_keys_pending = false;
    };
    for (const FaultWindow& w : spec.faults.windows) {
      if (!out.empty()) emit("");
      emit("[faults]");
      emit_plan_keys();
      emit("phase = " + std::to_string(w.phase));
      emit_dbl("execute_fail_rate", w.execute_fail_rate);
      emit("execute_fail_code = " +
           FailCodeToSpecString(w.execute_fail_code));
      emit_dbl("latency_spike_rate", w.latency_spike_rate);
      emit_us("latency_spike_us", w.latency_spike_nanos);
      emit_dbl("stall_rate", w.stall_rate);
      emit_us("stall_us", w.stall_nanos);
      emit_bool("fail_train", w.fail_train);
      emit_us("train_hang_us", w.train_hang_nanos);
    }
    if (plan_keys_pending) {
      emit("[faults]");
      emit_plan_keys();
    }
  }

  if (!(spec.resilience == defaults_res)) {
    if (!out.empty()) emit("");
    emit("[resilience]");
    const ResilienceSpec& r = spec.resilience;
    emit_us("op_timeout_us", r.op_timeout_nanos);
    emit_u64("max_retries", r.max_retries);
    emit_us("backoff_initial_us", r.backoff_initial_nanos);
    emit_dbl("backoff_multiplier", r.backoff_multiplier);
    emit_us("backoff_max_us", r.backoff_max_nanos);
    emit_dbl("backoff_jitter", r.backoff_jitter);
    emit_bool("breaker_enabled", r.breaker_enabled);
    emit_u64("breaker_window_ops", r.breaker_window_ops);
    emit_dbl("breaker_threshold", r.breaker_failure_threshold);
    emit_us("breaker_cooldown_us", r.breaker_cooldown_nanos);
    emit_u64("breaker_halfopen_probes", r.breaker_half_open_probes);
  }
  return out;
}

Result<std::string> RenderRunSpecText(const RunSpec& spec) {
  if (spec.dataset_sources.size() != spec.datasets.size()) {
    return Status::FailedPrecondition(
        "spec has no dataset generation provenance (dataset_sources); only "
        "specs parsed from text can be rendered back");
  }
  LSBENCH_RETURN_IF_ERROR(CheckRenderableName(spec.name, "run"));
  for (const PhaseSpec& phase : spec.phases) {
    LSBENCH_RETURN_IF_ERROR(CheckRenderableName(phase.name, "phase"));
  }

  std::string out;
  auto emit = [&](const std::string& line) {
    out += line;
    out += '\n';
  };
  auto emit_u64 = [&](const char* key, uint64_t v) {
    emit(std::string(key) + " = " + std::to_string(v));
  };
  auto emit_dbl = [&](const char* key, double v) {
    emit(std::string(key) + " = " + FullDouble(v));
  };
  auto emit_bool = [&](const char* key, bool v) {
    emit(std::string(key) + std::string(v ? " = true" : " = false"));
  };
  auto emit_str = [&](const char* key, const std::string& v) {
    emit(std::string(key) + " = " + v);
  };

  emit_str("name", spec.name);
  emit_u64("seed", spec.seed);
  emit_u64("interval_ms", static_cast<uint64_t>(spec.interval_nanos /
                                                1000000));
  emit_u64("boxplot_sample_ms",
           static_cast<uint64_t>(spec.boxplot_sample_nanos / 1000000));
  emit_bool("offline_training", spec.offline_training);
  if (spec.sla.threshold_nanos != 0) {
    emit_u64("sla_ms",
             static_cast<uint64_t>(spec.sla.threshold_nanos / 1000000));
  }
  emit_dbl("sla_auto_percentile", spec.sla.auto_percentile);
  emit_dbl("sla_auto_margin", spec.sla.auto_margin);
  emit_u64("adjustment_window_ops", spec.adjustment_window_ops);

  for (const DatasetSourceSpec& source : spec.dataset_sources) {
    emit("");
    emit("[dataset]");
    emit_str("kind", source.kind);
    emit_u64("num_keys", source.num_keys);
    emit_u64("seed", source.seed);
    emit_dbl("param1", source.param1);
    emit_dbl("param2", source.param2);
  }

  for (const PhaseSpec& phase : spec.phases) {
    emit("");
    emit("[phase]");
    emit_str("name", phase.name);
    emit_u64("dataset", static_cast<uint64_t>(phase.dataset_index));
    emit_u64("ops", phase.num_operations);
    emit_str("mix", "get:" + FullDouble(phase.mix.get) +
                        ",scan:" + FullDouble(phase.mix.scan) +
                        ",insert:" + FullDouble(phase.mix.insert) +
                        ",update:" + FullDouble(phase.mix.update) +
                        ",delete:" + FullDouble(phase.mix.del) +
                        ",range_count:" + FullDouble(phase.mix.range_count));
    emit_str("access", AccessToSpecString(phase.access));
    emit_dbl("access_param", phase.access_param);
    emit_dbl("access_param2", phase.access_param2);
    emit_str("arrival", ArrivalToSpecString(phase.arrival));
    emit_dbl("arrival_qps", phase.arrival_rate_qps);
    emit_dbl("arrival_amplitude", phase.arrival_amplitude);
    emit_dbl("arrival_period_s", phase.arrival_period_seconds);
    emit_str("transition", TransitionToSpecString(phase.transition_in));
    emit_u64("transition_ops", phase.transition_operations);
    emit_bool("holdout", phase.holdout);
    emit_u64("scan_length", phase.scan_length);
    emit_dbl("range_selectivity", phase.range_selectivity);
    emit_str("batch_mix",
             "batch_get:" + FullDouble(phase.mix.batch_get) +
                 ",batch_put:" + FullDouble(phase.mix.batch_put));
    emit_u64("batch_size", phase.batch_size);
  }

  if (!(spec.service == ServiceSpec())) {
    emit("");
    emit("[service]");
    emit_bool("enabled", spec.service.enabled);
    emit_u64("queue_capacity", spec.service.queue_capacity);
    emit_str("policy", OverloadPolicyToString(spec.service.policy));
    emit_u64("slo_p99_ms",
             static_cast<uint64_t>(spec.service.slo_p99_nanos / 1000000));
    emit_dbl("max_shed_fraction", spec.service.max_shed_fraction);
  }

  if (spec.execution.workers != ExecutionSpec().workers) {
    emit("");
    emit("[execution]");
    emit_u64("workers", spec.execution.workers);
  }

  if (!(spec.observability == ObservabilitySpec())) {
    emit("");
    emit("[observability]");
    emit_bool("trace", spec.observability.trace);
    emit_bool("profile", spec.observability.profile);
    emit_bool("metrics", spec.observability.metrics);
  }

  if (spec.drift.declared) {
    emit("");
    emit("[drift]");
    if (!spec.drift.trajectory.empty()) {
      std::string joined;
      for (size_t i = 0; i < spec.drift.trajectory.size(); ++i) {
        if (i > 0) joined += ", ";
        joined += FullDouble(spec.drift.trajectory[i]);
      }
      emit_str("trajectory", joined);
    }
    emit_dbl("tolerance", spec.drift.tolerance);
    emit_u64("sample_ops", spec.drift.sample_ops);
    emit_u64("seed", spec.drift.seed);
  }

  const std::string resilience = RenderResilienceText(spec);
  if (!resilience.empty()) {
    emit("");
    out += resilience;
  }
  return out;
}

}  // namespace lsbench
