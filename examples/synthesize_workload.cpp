// The §V-C synthesizer end-to-end: treat one dataset + trace as the
// "production deployment" you are not allowed to share, synthesize a
// statistically equivalent dataset and workload spec from it, and verify on
// a real SUT that the synthetic benchmark predicts the production one —
// similarity stats and measured throughput side by side.

#include <algorithm>
#include <cstdio>

#include "core/driver.h"
#include "core/replay.h"
#include "data/dataset.h"
#include "data/synthesizer.h"
#include "stats/similarity.h"
#include "sut/systems.h"
#include "workload/generator.h"

int main() {
  using namespace lsbench;

  // --- the "production" side (pretend this cannot leave the building) ---
  DatasetOptions data_options;
  data_options.num_keys = 60000;
  data_options.seed = 505;
  const Dataset production =
      GenerateDataset(ClusteredUnit(7, 0.004, 3), data_options);
  PhaseSpec production_phase;
  production_phase.name = "production";
  production_phase.mix.get = 0.65;
  production_phase.mix.scan = 0.2;
  production_phase.mix.insert = 0.15;
  production_phase.access = AccessPattern::kZipfian;
  production_phase.scan_length = 80;
  const OperationTrace trace =
      RecordTrace(production, production_phase, 50000, 99);

  // --- the synthesizer output (what you can publish) ---
  const Dataset synthetic = SynthesizeDatasetLike(production);
  const FittedWorkload fitted =
      FitPhaseSpecFromTrace(trace, production.domain_max);

  const double ks =
      KolmogorovSmirnov(Subsample(production.NormalizedKeys(), 4096),
                        Subsample(synthetic.NormalizedKeys(), 4096))
          .statistic;
  size_t shared = 0;
  for (Key k : synthetic.keys) {
    if (std::binary_search(production.keys.begin(), production.keys.end(),
                           k)) {
      ++shared;
    }
  }
  std::printf("dataset synthesis: KS(prod, synth) = %.4f, shared keys = "
              "%zu/%zu (%.2f%%)\n",
              ks, shared, synthetic.size(),
              100.0 * static_cast<double>(shared) /
                  static_cast<double>(synthetic.size()));
  std::printf(
      "workload fit: mix get=%.2f scan=%.2f insert=%.2f, access=%s, "
      "scan_length=%u, hot10 mass=%.2f\n",
      fitted.phase.mix.get, fitted.phase.mix.scan, fitted.phase.mix.insert,
      AccessPatternToString(fitted.phase.access).c_str(),
      fitted.phase.scan_length, fitted.hot10_mass);

  // --- does the synthetic benchmark predict production performance? ---
  auto measure = [](const Dataset& ds, const PhaseSpec& phase) {
    RunSpec spec;
    spec.name = "synth_check";
    spec.datasets.push_back(ds);
    PhaseSpec p = phase;
    p.dataset_index = 0;
    p.num_operations = 50000;
    spec.phases.push_back(p);
    LearnedKvSystem sut;
    BenchmarkDriver driver;
    return driver.Run(spec, &sut).value().metrics.mean_throughput;
  };
  const double prod_tput = measure(production, production_phase);
  const double synth_tput = measure(synthetic, fitted.phase);
  std::printf(
      "learned SUT throughput: production %.0f ops/s vs synthetic %.0f "
      "ops/s (ratio %.2f)\n",
      prod_tput, synth_tput, synth_tput / prod_tput);
  std::printf(
      "=> the synthetic pair preserves what the learned system's\n"
      "   performance depends on, without disclosing a single row\n"
      "   (paper SV-C).\n");
  return 0;
}
