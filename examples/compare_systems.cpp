// Example: the fair-comparison harness. Runs one dynamic benchmark spec
// against four systems — traditional, static learned (RMI and PGM), and the
// continuously adaptive index — and prints a side-by-side table of the
// paper's metric suite, plus an archived CSV trace of the exact operation
// stream used (for reproducibility / benchmark-as-a-service hand-off).

#include <cstdio>

#include "core/comparison.h"
#include "core/replay.h"
#include "data/dataset.h"
#include "sut/systems.h"

int main() {
  using namespace lsbench;

  RunSpec spec;
  spec.name = "four_way_comparison";
  DatasetOptions options;
  options.num_keys = 50000;
  options.seed = 1;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));
  options.seed = 2;
  spec.datasets.push_back(
      GenerateDataset(ClusteredUnit(6, 0.005, 3), options));

  PhaseSpec steady;
  steady.name = "steady";
  steady.mix.get = 0.7;
  steady.mix.insert = 0.3;
  steady.access = AccessPattern::kZipfian;
  steady.num_operations = 60000;
  spec.phases.push_back(steady);

  PhaseSpec shifted = steady;
  shifted.name = "shifted";
  shifted.dataset_index = 1;
  shifted.transition_in = TransitionKind::kLinear;
  shifted.transition_operations = 10000;
  spec.phases.push_back(shifted);

  BTreeSystem btree;
  LearnedSystemOptions rmi_options;
  rmi_options.retrain_policy = RetrainPolicy::kDeltaThreshold;
  LearnedKvSystem rmi(rmi_options);
  LearnedSystemOptions pgm_options;
  pgm_options.index_kind = LearnedSystemOptions::IndexKind::kPgm;
  pgm_options.retrain_policy = RetrainPolicy::kDriftTriggered;
  LearnedKvSystem pgm(pgm_options);
  AdaptiveKvSystem adaptive;

  const Result<ComparisonReport> report =
      CompareSystems(spec, {&btree, &rmi, &pgm, &adaptive});
  if (!report.ok()) {
    std::fprintf(stderr, "comparison failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", RenderComparison(report.value()).c_str());

  // Archive the steady phase's exact operation stream for later replay.
  const OperationTrace trace =
      RecordTrace(spec.datasets[0], steady, 1000, spec.seed);
  std::printf("archived trace: %zu ops, first lines of CSV:\n", trace.size());
  const std::string csv = trace.ToCsv();
  std::printf("%.*s...\n", 120, csv.c_str());
  return 0;
}
