// Scenario example: a day-in-the-life workload compressed to seconds — the
// dynamic behaviors the paper's introduction says real deployments exhibit
// and fixed benchmarks miss: diurnal load, a traffic burst, growing skew,
// and a data-distribution shift, ending with a hold-out phase the system
// has never been allowed to train on.
//
// Compares an adaptive learned system against the traditional baseline and
// prints SLA bands (Fig. 1c view) plus per-phase adaptability metrics.

#include <cstdio>

#include "core/driver.h"
#include "data/dataset.h"
#include "report/report.h"
#include "sut/systems.h"

int main() {
  using namespace lsbench;

  DatasetOptions data_options;
  data_options.num_keys = 60000;
  data_options.seed = 20260706;
  RunSpec spec;
  spec.name = "diurnal_shift";
  spec.datasets.push_back(
      GenerateDataset(GaussianUnit(0.4, 0.15), data_options));
  data_options.seed += 1;
  spec.datasets.push_back(
      GenerateDataset(ClusteredUnit(4, 0.01, 3), data_options));
  data_options.seed += 1;
  spec.datasets.push_back(
      GenerateDataset(LognormalUnit(0.0, 1.8), data_options));
  spec.interval_nanos = 100000000;  // 100 ms bands.
  spec.adjustment_window_ops = 2000;

  // Morning: moderate diurnal load, mild skew.
  PhaseSpec morning;
  morning.name = "morning_diurnal";
  morning.dataset_index = 0;
  morning.mix = OperationMix::ReadMostly();
  morning.access = AccessPattern::kZipfian;
  morning.access_param = 0.8;
  morning.arrival = ArrivalPattern::kDiurnal;
  morning.arrival_rate_qps = 30000.0;
  morning.num_operations = 60000;
  spec.phases.push_back(morning);

  // Flash sale: bursty arrivals, growing skew, insert-heavy.
  PhaseSpec burst;
  burst.name = "flash_sale_burst";
  burst.dataset_index = 1;
  burst.mix.get = 0.5;
  burst.mix.insert = 0.4;
  burst.mix.scan = 0.1;
  burst.access = AccessPattern::kHotSpot;
  burst.access_param = 0.05;
  burst.arrival = ArrivalPattern::kBursty;
  burst.arrival_rate_qps = 20000.0;
  burst.num_operations = 60000;
  burst.transition_in = TransitionKind::kCosine;
  burst.transition_operations = 10000;
  spec.phases.push_back(burst);

  // Nightly analytics on a drifted distribution: out-of-sample hold-out.
  PhaseSpec analytics;
  analytics.name = "night_analytics_holdout";
  analytics.dataset_index = 2;
  analytics.mix = OperationMix::Analytic();
  analytics.access = AccessPattern::kUniform;
  analytics.num_operations = 5000;
  analytics.holdout = true;
  spec.phases.push_back(analytics);

  LearnedSystemOptions learned_options;
  learned_options.retrain_policy = RetrainPolicy::kDriftTriggered;
  LearnedKvSystem learned(learned_options);
  BTreeSystem btree;

  DriverOptions driver_options;
  driver_options.enforce_holdout_once = false;  // Example reruns freely.
  BenchmarkDriver driver(nullptr, driver_options);

  for (SystemUnderTest* sut :
       std::initializer_list<SystemUnderTest*>{&learned, &btree}) {
    const Result<RunResult> result = driver.Run(spec, sut);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const RunResult& run = result.value();
    std::printf("%s\n", RenderRunSummary(run).c_str());
    std::printf("%s\n",
                RenderSlaBands(run.metrics.bands, run.metrics.sla_nanos)
                    .c_str());
  }
  return 0;
}
