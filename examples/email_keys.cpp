// Scenario example for the paper's §V-C synthetic-data argument: "a table
// column containing email addresses could be replaced by a synthetic email
// address generator that provides a similar data distribution without
// adversely affecting the outcome."
//
// Generates a synthetic email key set, scores it with the dataset-quality
// tool, and compares learned indexes against the B+-tree on it — string-ish
// keys via an order-preserving 8-byte prefix encoding.

#include <cstdio>

#include "data/dataset.h"
#include "data/quality.h"
#include "index/btree.h"
#include "learned/pgm.h"
#include "learned/rmi.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/string_util.h"

int main() {
  using namespace lsbench;

  // 1. Synthesize the "email column" and inspect a few rows.
  EmailGenerator gen(2026);
  std::printf("sample synthetic addresses:\n");
  for (int i = 0; i < 5; ++i) {
    const std::string email = gen.Next();
    std::printf("  %-40s key=%llu\n", email.c_str(),
                static_cast<unsigned long long>(EmailGenerator::ToKey(email)));
  }

  const Dataset ds = GenerateEmailDataset(40000, 2026);
  const DataQualityReport quality = ScoreDataset(ds);
  std::printf("\ndataset: %zu distinct keys, quality %.1f/100 (%s)\n",
              ds.size(), quality.overall, quality.summary.c_str());

  // 2. Index the keys three ways and time random lookups.
  std::vector<KeyValue> pairs;
  pairs.reserve(ds.keys.size());
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
  }

  BTree btree;
  RmiIndex rmi;
  PgmIndex pgm(32);
  btree.BulkLoad(pairs);
  rmi.BulkLoad(pairs);
  pgm.BulkLoad(pairs);

  RealClock clock;
  constexpr int kLookups = 2000000;
  std::printf("\n%-8s %14s %14s %12s\n", "index", "lookups/s", "memory_B",
              "notes");
  for (KvIndex* index :
       std::initializer_list<KvIndex*>{&btree, &rmi, &pgm}) {
    Rng rng(1);
    Stopwatch watch(&clock);
    uint64_t hits = 0;
    for (int i = 0; i < kLookups; ++i) {
      const Key key = ds.keys[rng.NextBounded(ds.keys.size())];
      hits += index->Get(key).has_value() ? 1 : 0;
    }
    const double seconds = watch.ElapsedSeconds();
    std::printf("%-8s %14s %14zu %12s\n", index->name().c_str(),
                HumanCount(kLookups / seconds).c_str(), index->MemoryBytes(),
                hits == kLookups ? "all hits" : "MISSES!");
  }
  std::printf(
      "\n=> the synthetic generator preserves the distributional features\n"
      "   (prefix clustering, domain popularity skew) that learned indexes\n"
      "   exploit — no production data required.\n");
  return 0;
}
