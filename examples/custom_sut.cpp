// Extensibility example: plugging *your own* system under test into the
// LSBench driver. The paper requires the benchmark to avoid imposing
// architectural constraints on SUTs — the SystemUnderTest interface is four
// methods, shown here by wrapping a plain std::map as a (naive) engine with
// no learned components at all.

#include <cstdio>
#include <map>

#include "core/driver.h"
#include "data/dataset.h"
#include "report/report.h"
#include "sut/sut.h"

namespace {

using namespace lsbench;

/// A minimal SUT: std::map storage, no statistics, no training, no
/// optimizer. RangeCount walks the ordered map directly.
class StdMapSystem final : public SystemUnderTest {
 public:
  std::string name() const override { return "stdmap_system"; }

  Status Load(const std::vector<KeyValue>& sorted_pairs) override {
    data_.clear();
    for (const auto& [k, v] : sorted_pairs) data_.emplace_hint(data_.end(), k, v);
    return Status::OK();
  }

  OpResult Execute(const Operation& op) override {
    OpResult result;
    switch (op.type) {
      case OpType::kGet: {
        const auto it = data_.find(op.key);
        result.ok = it != data_.end();
        result.rows = result.ok ? 1 : 0;
        break;
      }
      case OpType::kScan: {
        auto it = data_.lower_bound(op.key);
        for (uint32_t i = 0; i < op.scan_length && it != data_.end();
             ++i, ++it) {
          ++result.rows;
        }
        result.ok = true;
        break;
      }
      case OpType::kInsert:
      case OpType::kUpdate:
        data_[op.key] = op.value;
        result.ok = true;
        result.rows = 1;
        break;
      case OpType::kDelete:
        result.ok = data_.erase(op.key) > 0;
        result.rows = result.ok ? 1 : 0;
        break;
      case OpType::kRangeCount: {
        for (auto it = data_.lower_bound(op.key);
             it != data_.end() && it->first <= op.range_end; ++it) {
          ++result.rows;
        }
        result.ok = true;
        break;
      }
      case OpType::kBatchGet:
      case OpType::kBatchPut: {
        // Aggregate view of the batch classes (rows = elements
        // found/applied). A SUT that doesn't override ExecuteBatch never
        // receives these through the driver — the scalar fallback unrolls
        // batches into per-element Gets/Updates — but direct callers may.
        const bool put = op.type == OpType::kBatchPut;
        for (uint32_t i = 0; i < op.batch_size; ++i) {
          if (put) {
            data_[op.batch_keys[i]] = op.batch_values[i];
            ++result.rows;
          } else if (data_.count(op.batch_keys[i]) > 0) {
            ++result.rows;
          }
        }
        result.ok = true;
        break;
      }
    }
    return result;
  }

  SutStats GetStats() const override {
    SutStats stats;
    stats.memory_bytes = data_.size() * (sizeof(Key) + sizeof(Value) +
                                         4 * sizeof(void*));
    return stats;
  }

 private:
  std::map<Key, Value> data_;
};

}  // namespace

int main() {
  using namespace lsbench;

  RunSpec spec;
  spec.name = "custom_sut_demo";
  DatasetOptions options;
  options.num_keys = 30000;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));

  PhaseSpec phase;
  phase.name = "mixed";
  phase.mix.get = 0.6;
  phase.mix.insert = 0.2;
  phase.mix.scan = 0.1;
  phase.mix.range_count = 0.1;
  phase.num_operations = 40000;
  spec.phases.push_back(phase);

  StdMapSystem sut;
  BenchmarkDriver driver;
  const Result<RunResult> result = driver.Run(spec, &sut);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", RenderRunSummary(result.value()).c_str());
  std::printf(
      "=> any engine implementing Load/Execute/GetStats participates in\n"
      "   the benchmark; Train/OnPhaseStart are optional hooks.\n");
  return 0;
}
