// Quickstart for LSBench: define datasets and phases, run a learned system
// and a traditional baseline through the benchmark driver, and print the
// paper's metric suite for both.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/driver.h"
#include "core/specialization.h"
#include "data/dataset.h"
#include "report/report.h"
#include "sut/systems.h"

int main() {
  using namespace lsbench;

  // 1. Datasets: the benchmark varies the *data distribution* inside a run.
  DatasetOptions data_options;
  data_options.num_keys = 50000;
  data_options.seed = 7;
  RunSpec spec;
  spec.name = "quickstart";
  spec.datasets.push_back(GenerateDataset(UniformUnit(), data_options));
  spec.datasets.push_back(
      GenerateDataset(ClusteredUnit(5, 0.01, 11), data_options));

  // 2. Phases: a zipfian read phase on the first distribution, then an
  //    abrupt shift to a clustered distribution with mixed reads/writes.
  PhaseSpec warm;
  warm.name = "zipf_reads";
  warm.dataset_index = 0;
  warm.mix = OperationMix::ReadMostly();
  warm.access = AccessPattern::kZipfian;
  warm.num_operations = 50000;
  spec.phases.push_back(warm);

  PhaseSpec shifted;
  shifted.name = "clustered_mixed";
  shifted.dataset_index = 1;
  shifted.mix.get = 0.6;
  shifted.mix.insert = 0.4;
  shifted.num_operations = 50000;
  spec.phases.push_back(shifted);

  // 3. Run both systems through the driver. Training is timed and reported
  //    as a first-class result.
  BenchmarkDriver driver;
  LearnedKvSystem learned;  // RMI + drift-triggered retraining by default.
  BTreeSystem btree;

  const Result<RunResult> learned_run = driver.Run(spec, &learned);
  const Result<RunResult> btree_run = driver.Run(spec, &btree);
  if (!learned_run.ok() || !btree_run.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  // 4. Reports: run summaries, the Fig. 1a specialization view, and the
  //    Fig. 1b cumulative comparison between the two systems.
  std::printf("%s\n", RenderRunSummary(learned_run.value()).c_str());
  std::printf("%s\n", RenderRunSummary(btree_run.value()).c_str());
  std::printf("%s\n",
              RenderSpecializationReport(
                  BuildSpecializationReport(spec, learned_run.value()))
                  .c_str());
  std::printf(
      "%s\n",
      RenderCumulativeComparison(
          {{learned.name(), learned_run.value().metrics.cumulative},
           {btree.name(), btree_run.value().metrics.cumulative}})
          .c_str());
  return 0;
}
