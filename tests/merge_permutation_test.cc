// Property test: the post-run shard merges are permutation-invariant. The
// repo's reproducibility contract says the merged event stream, trace,
// metrics snapshot, and stage breakdown are pure functions of the shards'
// CONTENTS — never of the order workers happened to finish (which is the
// order the driver collects them in). lsbench-sched proves this under every
// interleaving for small pipelines (tests/sched_model_test.cc); this test
// attacks the same invariant from the other side, feeding every permutation
// of synthetic shards through the real merge functions and requiring
// byte-identical serialized output.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_sink.h"
#include "core/events.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/random.h"

namespace lsbench {
namespace {

// Runs `body(perm)` for every permutation of {0, ..., n-1}.
void ForEachPermutation(size_t n,
                        const std::function<void(const std::vector<size_t>&)>&
                            body) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    body(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

// --- Event shards -----------------------------------------------------------

// One worker's shard: seqs ascend per shard (the sink contract), timestamps
// overlap across shards and deliberately collide so the (timestamp, worker,
// seq) tie-break is exercised, not just the timestamp sort.
EventStream MakeEventShard(uint32_t worker, size_t n) {
  Rng rng(1000 + worker);
  EventStream shard;
  shard.reserve(n);
  int64_t ts = 0;
  for (size_t i = 0; i < n; ++i) {
    // Step 0 half the time: equal timestamps within AND across shards.
    ts += static_cast<int64_t>(rng.NextBounded(2) * 100);
    OpEvent e;
    e.timestamp_nanos = ts;
    e.latency_nanos = static_cast<int64_t>(rng.NextBounded(1000));
    e.issue_nanos = ts - e.latency_nanos;
    e.phase = static_cast<int32_t>(rng.NextBounded(2));
    e.ok = rng.NextBounded(4) != 0;
    e.rows = rng.NextBounded(8);
    e.retries = static_cast<uint16_t>(rng.NextBounded(3));
    e.worker = worker;
    e.seq = i;
    shard.push_back(e);
  }
  return shard;
}

TEST(MergePermutation, EventShardsMergeByteIdentically) {
  constexpr size_t kShards = 4;
  std::vector<EventStream> shards;
  for (size_t w = 0; w < kShards; ++w) {
    shards.push_back(MakeEventShard(static_cast<uint32_t>(w), 16));
  }
  const std::string reference = SerializeEventStream(
      MergeEventShards(shards));
  ASSERT_FALSE(reference.empty());

  ForEachPermutation(kShards, [&](const std::vector<size_t>& perm) {
    std::vector<EventStream> permuted;
    for (size_t idx : perm) permuted.push_back(shards[idx]);
    const EventStream merged = MergeEventShards(std::move(permuted));
    EXPECT_EQ(reference, SerializeEventStream(merged))
        << "shard order changed the merged event stream";
  });
}

TEST(MergePermutation, MergedEventStreamIsProvenanceOrdered) {
  std::vector<EventStream> shards;
  for (size_t w = 0; w < 3; ++w) {
    shards.push_back(MakeEventShard(static_cast<uint32_t>(w), 12));
  }
  const EventStream merged = MergeEventShards(std::move(shards));
  for (size_t i = 1; i < merged.size(); ++i) {
    const OpEvent& a = merged[i - 1];
    const OpEvent& b = merged[i];
    const auto key = [](const OpEvent& e) {
      return std::make_tuple(e.timestamp_nanos, e.worker, e.seq);
    };
    EXPECT_LT(key(a), key(b)) << "merge order violated at index " << i;
  }
}

// --- Trace shards -----------------------------------------------------------

TraceStream MakeTraceShard(uint32_t worker, size_t n) {
  static const char* const kNames[] = {"generate", "pace", "execute",
                                       "record"};
  Rng rng(2000 + worker);
  TraceStream shard;
  shard.reserve(n);
  int64_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    start += static_cast<int64_t>(rng.NextBounded(2) * 50);
    TraceSpan span;
    span.name = kNames[rng.NextBounded(4)];
    span.start_nanos = start;
    span.end_nanos = start + static_cast<int64_t>(rng.NextBounded(500));
    span.phase = static_cast<int32_t>(rng.NextBounded(2));
    span.worker = worker;
    span.seq = i;
    shard.push_back(span);
  }
  return shard;
}

TEST(MergePermutation, TraceShardsMergeByteIdentically) {
  constexpr size_t kShards = 4;
  std::vector<TraceStream> shards;
  for (size_t w = 0; w < kShards; ++w) {
    shards.push_back(MakeTraceShard(static_cast<uint32_t>(w), 12));
  }
  // Driver-level spans sort after all workers at equal timestamps.
  shards.push_back(MakeTraceShard(kDriverTraceWorker, 6));

  const std::string reference = SerializeTrace(MergeTraceShards(shards));
  ASSERT_FALSE(reference.empty());

  ForEachPermutation(shards.size(), [&](const std::vector<size_t>& perm) {
    std::vector<TraceStream> permuted;
    for (size_t idx : perm) permuted.push_back(shards[idx]);
    EXPECT_EQ(reference, SerializeTrace(MergeTraceShards(
                             std::move(permuted))))
        << "shard order changed the merged trace";
  });
}

// --- Metrics shards ---------------------------------------------------------

// Canonical text form of a snapshot: MetricsSnapshot has no serializer of
// its own (reports consume it structurally), so byte-identity here means
// identity of this exhaustive stringification.
std::string StringifySnapshot(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge " << name << " " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << "hist " << name << " count=" << h.count << " sum=" << h.sum
        << " min=" << h.min << " max=" << h.max << " counts=";
    for (uint64_t c : h.counts) out << c << ",";
    out << "\n";
  }
  return out.str();
}

// Shards with overlapping AND disjoint instrument sets: merge must sum the
// shared names and pass the rest through, independent of shard order.
MetricsSnapshot MakeMetricsShard(uint32_t worker) {
  MetricsRegistry registry;
  Rng rng(3000 + worker);
  registry.GetCounter("ops.total")->Increment(rng.NextBounded(100));
  registry.GetCounter("worker." + std::to_string(worker) + ".ops")
      ->Increment(worker + 1);
  registry.GetGauge("queue.depth")->Add(
      static_cast<int64_t>(rng.NextBounded(16)));
  FixedHistogram* hist = registry.GetHistogram("latency");
  for (int i = 0; i < 32; ++i) {
    hist->Record(static_cast<int64_t>(rng.NextBounded(4000000)));
  }
  return registry.Snapshot();
}

TEST(MergePermutation, MetricsShardsMergeByteIdentically) {
  constexpr size_t kShards = 4;
  std::vector<MetricsSnapshot> shards;
  for (size_t w = 0; w < kShards; ++w) {
    shards.push_back(MakeMetricsShard(static_cast<uint32_t>(w)));
  }
  auto reference = MergeMetricsShards(shards);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  const std::string reference_text = StringifySnapshot(reference.value());
  ASSERT_FALSE(reference_text.empty());

  ForEachPermutation(kShards, [&](const std::vector<size_t>& perm) {
    std::vector<MetricsSnapshot> permuted;
    for (size_t idx : perm) permuted.push_back(shards[idx]);
    auto merged = MergeMetricsShards(permuted);
    ASSERT_TRUE(merged.ok()) << merged.status().message();
    EXPECT_EQ(reference_text, StringifySnapshot(merged.value()))
        << "shard order changed the merged metrics snapshot";
  });
}

// --- Stage breakdown shards -------------------------------------------------

std::string StringifyBreakdown(const StageBreakdown& breakdown) {
  std::ostringstream out;
  for (const PhaseStageBreakdown& phase : breakdown) {
    out << "phase " << phase.phase << ":";
    for (size_t s = 0; s < kNumStages; ++s) {
      out << " " << phase.stages[s].total_nanos << "/"
          << phase.stages[s].samples;
    }
    out << "\n";
  }
  return out.str();
}

// Shards cover overlapping phase sets (worker 0 has the run-level phase,
// later workers only their own); the accumulate must stay phase-aligned.
StageBreakdown MakeStageShard(uint32_t worker) {
  Rng rng(4000 + worker);
  StageBreakdown shard;
  const int32_t first_phase =
      worker == 0 ? PhaseStageBreakdown::kRunLevelPhase : 0;
  for (int32_t phase = first_phase; phase <= 1; ++phase) {
    PhaseStageBreakdown p;
    p.phase = phase;
    for (size_t s = 0; s < kNumStages; ++s) {
      p.stages[s].total_nanos = static_cast<int64_t>(rng.NextBounded(100000));
      p.stages[s].samples = rng.NextBounded(50);
    }
    shard.push_back(p);
  }
  return shard;
}

TEST(MergePermutation, StageBreakdownMergesByteIdentically) {
  constexpr size_t kShards = 4;
  std::vector<StageBreakdown> shards;
  for (size_t w = 0; w < kShards; ++w) {
    shards.push_back(MakeStageShard(static_cast<uint32_t>(w)));
  }
  StageBreakdown reference;
  for (const StageBreakdown& shard : shards) {
    MergeStageBreakdown(&reference, shard);
  }
  const std::string reference_text = StringifyBreakdown(reference);
  ASSERT_FALSE(reference_text.empty());

  ForEachPermutation(kShards, [&](const std::vector<size_t>& perm) {
    StageBreakdown merged;
    for (size_t idx : perm) MergeStageBreakdown(&merged, shards[idx]);
    EXPECT_EQ(reference_text, StringifyBreakdown(merged))
        << "accumulation order changed the stage breakdown";
  });
}

}  // namespace
}  // namespace lsbench
