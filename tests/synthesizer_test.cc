#include <gtest/gtest.h>

#include <algorithm>

#include "core/replay.h"
#include "data/dataset.h"
#include "data/synthesizer.h"
#include "stats/similarity.h"
#include "workload/generator.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Dataset synthesis
// ---------------------------------------------------------------------------

class SynthesizeDatasetTest
    : public ::testing::TestWithParam<
          std::function<std::unique_ptr<UnitDistribution>()>> {};

TEST_P(SynthesizeDatasetTest, MatchesSourceDistribution) {
  DatasetOptions options;
  options.num_keys = 30000;
  options.seed = 11;
  const Dataset original = GenerateDataset(*GetParam()(), options);
  const Dataset synthetic = SynthesizeDatasetLike(original);

  EXPECT_EQ(synthetic.size(), original.size());
  EXPECT_TRUE(std::is_sorted(synthetic.keys.begin(), synthetic.keys.end()));

  // Distributionally close (this is the whole point)...
  const double ks =
      KolmogorovSmirnov(Subsample(original.NormalizedKeys(), 4096),
                        Subsample(synthetic.NormalizedKeys(), 4096))
          .statistic;
  EXPECT_LT(ks, 0.05) << original.name;

  // ...while sharing almost no actual keys (privacy property).
  size_t shared = 0;
  for (Key k : synthetic.keys) {
    if (std::binary_search(original.keys.begin(), original.keys.end(), k)) {
      ++shared;
    }
  }
  EXPECT_LT(static_cast<double>(shared) / static_cast<double>(synthetic.size()),
            0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SynthesizeDatasetTest,
    ::testing::Values([] { return MakeUniform(); },
                      [] { return MakeLognormal(0.0, 1.5); },
                      [] { return MakeClustered(10, 0.004, 3); },
                      [] { return MakePareto(1.3); }));

TEST(SynthesizeDatasetTest, RespectsRequestedCardinality) {
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset original = GenerateDataset(UniformUnit(), options);
  SynthesizeOptions synth;
  synth.num_keys = 1234;
  EXPECT_EQ(SynthesizeDatasetLike(original, synth).size(), 1234u);
}

TEST(SynthesizeDatasetTest, DeterministicBySeed) {
  DatasetOptions options;
  options.num_keys = 2000;
  const Dataset original = GenerateDataset(LognormalUnit(0, 1), options);
  const Dataset a = SynthesizeDatasetLike(original);
  const Dataset b = SynthesizeDatasetLike(original);
  EXPECT_EQ(a.keys, b.keys);
  SynthesizeOptions other;
  other.seed = 2;
  EXPECT_NE(SynthesizeDatasetLike(original, other).keys, a.keys);
}

// ---------------------------------------------------------------------------
// Workload fitting
// ---------------------------------------------------------------------------

OperationTrace TraceFor(const PhaseSpec& phase, const Dataset& ds,
                        size_t count) {
  return RecordTrace(ds, phase, count, 77);
}

TEST(FitPhaseSpecTest, RecoversMixAndSkew) {
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  PhaseSpec truth;
  truth.mix.get = 0.6;
  truth.mix.insert = 0.25;
  truth.mix.scan = 0.15;
  truth.access = AccessPattern::kZipfian;
  truth.scan_length = 64;
  const OperationTrace trace = TraceFor(truth, ds, 20000);

  const FittedWorkload fitted = FitPhaseSpecFromTrace(trace, ds.domain_max);
  EXPECT_NEAR(fitted.phase.mix.get, 0.6, 0.02);
  EXPECT_NEAR(fitted.phase.mix.insert, 0.25, 0.02);
  EXPECT_NEAR(fitted.phase.mix.scan, 0.15, 0.02);
  EXPECT_EQ(fitted.phase.access, AccessPattern::kZipfian);
  EXPECT_GT(fitted.hot10_mass, 0.6);
  // Scan length within the generator's +/-50% dithering of the true value.
  EXPECT_NEAR(fitted.phase.scan_length, 64u, 16u);
}

TEST(FitPhaseSpecTest, DetectsUniformAccess) {
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  PhaseSpec truth;
  truth.mix.get = 1.0;
  truth.access = AccessPattern::kUniform;
  const FittedWorkload fitted =
      FitPhaseSpecFromTrace(TraceFor(truth, ds, 20000), ds.domain_max);
  EXPECT_EQ(fitted.phase.access, AccessPattern::kUniform);
  EXPECT_LT(fitted.hot10_mass, 0.2);
}

TEST(FitPhaseSpecTest, RecoversRangeSelectivity) {
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  PhaseSpec truth;
  truth.mix.get = 0.0;
  truth.mix.range_count = 1.0;
  truth.range_selectivity = 0.02;
  const FittedWorkload fitted =
      FitPhaseSpecFromTrace(TraceFor(truth, ds, 5000), ds.domain_max);
  EXPECT_NEAR(fitted.phase.range_selectivity, 0.02, 0.005);
}

TEST(FitPhaseSpecTest, EmptyTrace) {
  const FittedWorkload fitted =
      FitPhaseSpecFromTrace(OperationTrace(), 1000);
  EXPECT_EQ(fitted.distinct_keys, 0u);
}

TEST(FitPhaseSpecTest, RoundTripProducesSimilarWorkloadSignature) {
  // Fit a spec from a trace, generate fresh operations from it, and check
  // the plan-subtree Jaccard similarity against the original workload.
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset ds = GenerateDataset(LognormalUnit(0, 1), options);
  PhaseSpec truth;
  truth.mix.get = 0.7;
  truth.mix.scan = 0.2;
  truth.mix.insert = 0.1;
  truth.access = AccessPattern::kZipfian;
  const OperationTrace trace = TraceFor(truth, ds, 10000);
  const FittedWorkload fitted = FitPhaseSpecFromTrace(trace, ds.domain_max);

  const WorkloadSignature original_sig =
      ComputePhaseSignature(ds, truth, 2000, 5);
  const WorkloadSignature fitted_sig =
      ComputePhaseSignature(ds, fitted.phase, 2000, 6);
  EXPECT_GT(original_sig.Similarity(fitted_sig), 0.7);
}

}  // namespace
}  // namespace lsbench
