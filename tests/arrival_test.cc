// ArrivalProcess unit tests: seeded determinism of the stochastic
// processes, mean-rate convergence, the exactness guarantees of closed-loop
// (always 0) and constant (always 1/rate) arrivals, and parameter
// validation — a bad rate must be an error Status at validate time, never a
// NaN interarrival at run time.

#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace lsbench {
namespace {

std::vector<double> DrawSequence(ArrivalProcess* process, uint64_t seed,
                                 size_t n) {
  Rng rng(seed);
  std::vector<double> draws;
  double now = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double inter = process->NextInterarrivalSeconds(&rng, now);
    draws.push_back(inter);
    now += inter;
  }
  return draws;
}

TEST(ArrivalTest, ClosedLoopIsExactlyZero) {
  ClosedLoopArrival arrival;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(arrival.NextInterarrivalSeconds(&rng, static_cast<double>(i)),
              0.0);
  }
}

TEST(ArrivalTest, ConstantIsExactlyOneOverRate) {
  ConstantArrival arrival(20000.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(arrival.NextInterarrivalSeconds(&rng, static_cast<double>(i)),
              1.0 / 20000.0);
  }
  EXPECT_EQ(arrival.name(), "constant(20000qps)");
}

TEST(ArrivalTest, PoissonSeededSequencesAreDeterministic) {
  PoissonArrival a(5000.0);
  PoissonArrival b(5000.0);
  const std::vector<double> seq_a = DrawSequence(&a, 42, 1000);
  const std::vector<double> seq_b = DrawSequence(&b, 42, 1000);
  EXPECT_EQ(seq_a, seq_b);  // Bitwise: same seed, same stream.

  const std::vector<double> other_seed = DrawSequence(&a, 43, 1000);
  EXPECT_NE(seq_a, other_seed);
}

TEST(ArrivalTest, DiurnalSeededSequencesAreDeterministic) {
  DiurnalArrival a(5000.0, 0.8, 20.0);
  DiurnalArrival b(5000.0, 0.8, 20.0);
  EXPECT_EQ(DrawSequence(&a, 7, 1000), DrawSequence(&b, 7, 1000));
}

TEST(ArrivalTest, PoissonMeanRateConverges) {
  PoissonArrival arrival(10000.0);
  const std::vector<double> draws = DrawSequence(&arrival, 42, 20000);
  double total = 0.0;
  for (double d : draws) total += d;
  const double mean_rate = static_cast<double>(draws.size()) / total;
  // 20k exponential draws: the empirical rate is within a few percent.
  EXPECT_NEAR(mean_rate, 10000.0, 500.0);
}

TEST(ArrivalTest, DiurnalMeanRateStaysNearBaseOverFullPeriods) {
  // Over whole periods the sinusoid averages out; the empirical rate lands
  // near the base. Loose bounds: rate modulation skews the harmonic mean.
  DiurnalArrival arrival(10000.0, 0.5, 1.0);
  const std::vector<double> draws = DrawSequence(&arrival, 42, 50000);
  double total = 0.0;
  for (double d : draws) total += d;
  const double mean_rate = static_cast<double>(draws.size()) / total;
  EXPECT_GT(mean_rate, 7000.0);
  EXPECT_LT(mean_rate, 13000.0);
}

TEST(ArrivalTest, ValidateAcceptsClosedLoopWithoutRate) {
  EXPECT_TRUE(ValidateArrivalParams(ArrivalPattern::kClosedLoop, 0.0, 0.8,
                                    20.0)
                  .ok());
}

TEST(ArrivalTest, ValidateRejectsNonPositiveOpenLoopRate) {
  for (ArrivalPattern pattern :
       {ArrivalPattern::kPoisson, ArrivalPattern::kDiurnal,
        ArrivalPattern::kBursty, ArrivalPattern::kConstant}) {
    const Status zero = ValidateArrivalParams(pattern, 0.0, 0.8, 20.0);
    EXPECT_FALSE(zero.ok()) << ArrivalPatternToString(pattern);
    EXPECT_NE(zero.message().find("positive arrival rate"),
              std::string::npos);
    EXPECT_FALSE(
        ValidateArrivalParams(pattern, -5.0, 0.8, 20.0).ok());
  }
}

TEST(ArrivalTest, ValidateRejectsBadDiurnalShape) {
  EXPECT_FALSE(
      ValidateArrivalParams(ArrivalPattern::kDiurnal, 1000.0, -0.1, 20.0)
          .ok());
  EXPECT_FALSE(
      ValidateArrivalParams(ArrivalPattern::kDiurnal, 1000.0, 1.0, 20.0)
          .ok());
  EXPECT_FALSE(
      ValidateArrivalParams(ArrivalPattern::kDiurnal, 1000.0, 0.8, 0.0)
          .ok());
  EXPECT_TRUE(
      ValidateArrivalParams(ArrivalPattern::kDiurnal, 1000.0, 0.8, 20.0)
          .ok());
  // Amplitude/period only constrain diurnal arrivals.
  EXPECT_TRUE(
      ValidateArrivalParams(ArrivalPattern::kPoisson, 1000.0, -0.1, 0.0)
          .ok());
}

TEST(ArrivalTest, FactoryBuildsEveryPattern) {
  EXPECT_EQ(MakeArrivalProcess(ArrivalPattern::kClosedLoop)->name(),
            "closed_loop");
  EXPECT_EQ(MakeArrivalProcess(ArrivalPattern::kConstant, 500.0)->name(),
            "constant(500qps)");
  EXPECT_NE(MakeArrivalProcess(ArrivalPattern::kPoisson, 500.0)
                ->name()
                .find("poisson"),
            std::string::npos);
  EXPECT_NE(MakeArrivalProcess(ArrivalPattern::kDiurnal, 500.0, 0.3, 5.0)
                ->name()
                .find("diurnal"),
            std::string::npos);
  EXPECT_NE(MakeArrivalProcess(ArrivalPattern::kBursty, 500.0)
                ->name()
                .find("bursty"),
            std::string::npos);
}

}  // namespace
}  // namespace lsbench
