// lsbench-sched model checks: exhaustive interleaving exploration of the
// REAL concurrent core (tools/sched/sched.h). Where concurrency_test.cc
// hammers components with OS threads and hopes the scheduler finds a bad
// interleaving, these tests enumerate every schedule of a small model and
// prove the invariant families the multi-worker driver rests on:
//
//   (a) shard-merge byte-identity: per-worker pipelines through a shared
//       SerializingSut produce the same merged, serialized event stream
//       under every schedule;
//   (b) AdmissionQueue conservation: offered == admitted + shed, the ring
//       never over/underflows, and predictive shedding respects
//       max_shed_fraction — under every schedule of concurrent
//       producers/consumers sharing the queue behind a Mutex;
//   (c) CircuitBreaker transition legality: open/close tallies stay
//       consistent with the observable state no matter how two workers'
//       outcome recordings interleave;
//   (d) EventSink single-writer discipline and per-shard seq contiguity.
//
// Engine fixtures (lost update, dropped lock, deadlock, condvar handoff)
// pin the checker itself: the seeded bugs MUST be caught, their decision
// strings MUST replay, and the correct variants MUST pass exhaustively.
//
// Standalone usage (the replay workflow; see docs/STATIC_ANALYSIS.md):
//   sched_model_test --sched-model=<name>                 explore one model
//   sched_model_test --sched-model=<name> --sched-replay=<schedule>
//                                                         re-run one schedule
// A violation's schedule string is printed on failure and accepted verbatim
// by --sched-replay.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/event_sink.h"
#include "core/executor.h"
#include "core/resilience.h"
#include "core/run_spec.h"
#include "core/service.h"
#include "obs/metrics_registry.h"
#include "sched/sched.h"
#include "sut/serializing.h"
#include "sut/systems.h"
#include "util/assert.h"
#include "util/atomic.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/sync.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Engine fixtures: minimal models that pin the checker's own behavior.

/// Classic lost update: two tasks read-modify-write a shared Atomic without
/// synchronization. Some schedule loses an increment; the checker must find
/// it.
sched::Model LostUpdateModel() {
  auto counter = std::make_shared<Atomic<uint64_t>>(0);
  sched::Model m;
  m.setup = [counter] { counter->Store(0); };
  for (int t = 0; t < 2; ++t) {
    m.tasks.push_back([counter] {
      const uint64_t v = counter->Load();
      counter->Store(v + 1);
    });
  }
  m.check = [counter] {
    sched::Check(counter->Load() == 2, "lost update: counter != 2");
  };
  return m;
}

/// A writer keeps `a == b`; an observer asserts it. With the Mutex the
/// invariant holds on every schedule; `locked = false` drops the lock and
/// the observer can land between the two stores.
sched::Model PairInvariantModel(bool locked) {
  struct State {
    Mutex mu;
    Atomic<uint64_t> a{0};
    Atomic<uint64_t> b{0};
  };
  auto st = std::make_shared<State>();
  const auto bump = [](Atomic<uint64_t>& x) { x.Store(x.Load() + 1); };
  sched::Model m;
  m.setup = [st] {
    st->a.Store(0);
    st->b.Store(0);
  };
  m.tasks.push_back([st, bump, locked] {
    if (locked) {
      MutexLock lock(st->mu);
      bump(st->a);
      bump(st->b);
    } else {
      bump(st->a);
      bump(st->b);
    }
  });
  m.tasks.push_back([st, locked] {
    uint64_t av = 0;
    uint64_t bv = 0;
    if (locked) {
      MutexLock lock(st->mu);
      av = st->a.Load();
      bv = st->b.Load();
    } else {
      av = st->a.Load();
      bv = st->b.Load();
    }
    sched::Check(av == bv, "pair invariant: observer saw a != b");
  });
  return m;
}

/// AB/BA lock-order inversion: some schedule deadlocks; the checker must
/// report it (with the schedule) rather than hang.
sched::Model DeadlockModel() {
  struct State {
    Mutex a;
    Mutex b;
  };
  auto st = std::make_shared<State>();
  sched::Model m;
  m.tasks.push_back([st] {
    MutexLock la(st->a);
    MutexLock lb(st->b);
  });
  m.tasks.push_back([st] {
    MutexLock lb(st->b);
    MutexLock la(st->a);
  });
  return m;
}

/// Producer/consumer handoff over Mutex + CondVar: exercises the modeled
/// wait (release, park, reacquire) and Signal. Must complete on every
/// schedule — a wedged wait would surface as a deadlock violation.
sched::Model CondVarHandoffModel() {
  struct State {
    Mutex mu;
    CondVar cv;
    bool ready = false;  // Guarded by mu; plain data is fine under a lock.
    Atomic<uint64_t> data{0};
  };
  auto st = std::make_shared<State>();
  sched::Model m;
  m.setup = [st] {
    st->ready = false;
    st->data.Store(0);
  };
  m.tasks.push_back([st] {
    st->data.Store(42);
    MutexLock lock(st->mu);
    st->ready = true;
    st->cv.Signal();
  });
  m.tasks.push_back([st] {
    {
      MutexLock lock(st->mu);
      st->cv.Wait(st->mu, [&st] { return st->ready; });
    }
    sched::Check(st->data.Load() == 42, "handoff: consumer ran before data");
  });
  return m;
}

// ---------------------------------------------------------------------------
// Invariant family (a): shard-merge byte-identity, plus (d) seq contiguity.
// Real pipeline: per-worker ResilientExecutor (own breaker, own
// VirtualClock) -> shared SerializingSut(BTreeSystem) -> per-worker
// EventSink, with a shared registry counter on the record path. Per-worker
// state is schedule-independent by construction; the model proves the
// *merged* artifact is too.

struct MergeFixture {
  explicit MergeFixture(int num_workers) : n(num_workers) {}

  void Reset() {
    btree = std::make_unique<BTreeSystem>();
    std::vector<KeyValue> pairs;
    for (Key k = 1; k <= 8; ++k) pairs.push_back({k, k * 10});
    MustOk(btree->Load(pairs));
    shared = std::make_unique<SerializingSut>(btree.get());
    registry = std::make_unique<MetricsRegistry>();
    Counter* recorded = registry->GetCounter("sched_model.events_recorded");
    workers.clear();
    workers.resize(static_cast<size_t>(n));
    ResilienceSpec spec;
    spec.breaker_enabled = true;
    spec.breaker_window_ops = 4;
    for (int w = 0; w < n; ++w) {
      Worker& worker = workers[static_cast<size_t>(w)];
      worker.clock = std::make_unique<VirtualClock>();
      worker.exec = std::make_unique<ResilientExecutor>(
          shared.get(), spec,
          Pacer(worker.clock.get(), worker.clock.get()),
          /*backoff_seed=*/7 + static_cast<uint64_t>(w),
          /*enable_breaker=*/true, ResilientExecutor::Options());
      worker.sink = std::make_unique<EventSink>(static_cast<uint32_t>(w));
      worker.sink->Reserve(kOpsPerWorker);
      worker.sink->BindObservability(nullptr, recorded);
    }
  }

  static void MustOk(const Status& s) { LSBENCH_ASSERT(s.ok()); }

  void RunWorker(int w) {
    Worker& worker = workers[static_cast<size_t>(w)];
    for (uint64_t i = 0; i < kOpsPerWorker; ++i) {
      // Disjoint key ranges: workers 0/1/2 probe {1,2}, {3,4}, {5,6}.
      Operation op;
      op.type = OpType::kGet;
      op.key = static_cast<Key>(w) * 2 + 1 + i;
      const int64_t arrival = static_cast<int64_t>(i) * 50000;
      const ExecOutcome out = worker.exec->ExecuteOne(op, arrival);
      OpEvent ev;
      ev.timestamp_nanos = worker.clock->NowNanos();
      ev.latency_nanos = ev.timestamp_nanos - arrival;
      ev.issue_nanos = arrival;
      ev.type = op.type;
      ev.ok = out.result.ok;
      ev.rows = out.result.rows;
      ev.retries = out.retries;
      ev.failed = out.failed;
      ev.timed_out = out.timed_out;
      ev.shed = out.shed;
      ev.open_loop = true;
      worker.sink->Record(ev);
    }
  }

  /// Drains the sinks, merges, and serializes. `contiguous` (optional)
  /// reports whether every shard's seqs ran 0..len-1.
  std::string SerializeMerged(bool* contiguous) {
    bool ok = true;
    std::vector<EventStream> shards;
    for (Worker& w : workers) {
      EventStream shard = w.sink->TakeEvents();
      for (size_t i = 0; i < shard.size(); ++i) {
        ok = ok && shard[i].seq == i;
      }
      ok = ok && shard.size() == kOpsPerWorker;
      shards.push_back(std::move(shard));
    }
    if (contiguous != nullptr) *contiguous = ok;
    return SerializeEventStream(MergeEventShards(std::move(shards)));
  }

  static constexpr uint64_t kOpsPerWorker = 2;

  struct Worker {
    std::unique_ptr<VirtualClock> clock;
    std::unique_ptr<ResilientExecutor> exec;
    std::unique_ptr<EventSink> sink;
  };

  const int n;
  std::unique_ptr<BTreeSystem> btree;
  std::unique_ptr<SerializingSut> shared;
  std::unique_ptr<MetricsRegistry> registry;
  std::vector<Worker> workers;
};

sched::Model MergePipelineModel(int num_workers) {
  auto fx = std::make_shared<MergeFixture>(num_workers);
  sched::Model m;
  m.setup = [fx] { fx->Reset(); };
  for (int w = 0; w < num_workers; ++w) {
    m.tasks.push_back([fx, w] { fx->RunWorker(w); });
  }
  // Reference artifact from one sequential (unmanaged, real-primitive) run;
  // every explored schedule must reproduce it byte for byte.
  m.setup();
  for (auto& task : m.tasks) task();
  const std::string expected = fx->SerializeMerged(nullptr);
  LSBENCH_ASSERT(!expected.empty());
  m.check = [fx, expected] {
    bool contiguous = false;
    const std::string got = fx->SerializeMerged(&contiguous);
    sched::Check(contiguous, "event shard seqs not contiguous from 0");
    sched::Check(got == expected,
                 "merged event stream diverged across schedules");
  };
  return m;
}

// ---------------------------------------------------------------------------
// Invariant family (b): AdmissionQueue conservation under concurrent
// producers and a consumer sharing the queue behind a Mutex. Parameters are
// chosen so the SLO shedder is always triggered (service EMA 400ns versus a
// 100ns SLO) and only the max_shed_fraction budget decides: sheds are
// predictive, never forced, so the budget bound must hold exactly.

struct QueueFixture {
  void Reset() {
    ServiceSpec spec;
    spec.enabled = true;
    spec.queue_capacity = 4;
    spec.policy = OverloadPolicy::kSloShed;
    spec.slo_p99_nanos = 100;
    spec.max_shed_fraction = 0.5;
    queue = std::make_unique<AdmissionQueue>(spec);
    queue->RecordServiceTime(400);  // Seed the EMA: every offer predicts a miss.
    popped = 0;
  }

  Mutex mu;
  std::unique_ptr<AdmissionQueue> queue;
  uint64_t popped = 0;
};

sched::Model QueueConservationModel() {
  auto fx = std::make_shared<QueueFixture>();
  sched::Model m;
  m.setup = [fx] { fx->Reset(); };
  for (int p = 0; p < 2; ++p) {
    m.tasks.push_back([fx, p] {
      for (int i = 0; i < 2; ++i) {
        WorkloadStream::Issue issue;
        issue.op.type = OpType::kGet;
        issue.op.key = static_cast<Key>(p * 10 + i);
        issue.arrival_rel_nanos = p * 10 + i;
        issue.open_loop = true;
        MutexLock lock(fx->mu);
        (void)fx->queue->Offer(issue, issue.arrival_rel_nanos,
                               /*degraded=*/false);
        // Ring bound, checked at every intermediate state the schedule can
        // produce, not just at the end.
        sched::Check(fx->queue->depth() <= 4, "queue depth exceeds capacity");
      }
    });
  }
  m.tasks.push_back([fx] {
    for (int i = 0; i < 2; ++i) {
      MutexLock lock(fx->mu);
      if (!fx->queue->empty()) {
        (void)fx->queue->PopFront(/*now_rel_nanos=*/100 + i);
        ++fx->popped;
      }
    }
  });
  m.check = [fx] {
    const AdmissionQueue& q = *fx->queue;
    sched::Check(q.offered() == 4, "offer count lost");
    sched::Check(q.admitted() + q.shed() == q.offered(),
                 "admitted + shed != offered");
    sched::Check(q.admitted() == fx->popped + q.depth(),
                 "admitted ops neither queued nor popped");
    sched::Check(q.peak_depth() <= 4, "peak depth exceeds capacity");
    // Capacity 4 and 4 offers: no forced shed is possible, so every shed
    // was predictive and the budget applies to all of them.
    sched::Check(static_cast<double>(q.shed()) <=
                     0.5 * static_cast<double>(q.offered()),
                 "predictive sheds exceed max_shed_fraction budget");
  };
  return m;
}

// ---------------------------------------------------------------------------
// Invariant family (c): CircuitBreaker transition legality. One breaker
// shared by two workers recording interleaved failures/successes; the
// registry mirror (opens/closes counters) must stay consistent with the
// observable state under every schedule, and open_count must be monotone
// from any single observer's point of view.

struct BreakerFixture {
  void Reset() {
    ResilienceSpec spec;
    spec.breaker_enabled = true;
    spec.breaker_window_ops = 2;
    spec.breaker_failure_threshold = 0.5;
    spec.breaker_cooldown_nanos = 100;
    spec.breaker_half_open_probes = 1;
    registry = std::make_unique<MetricsRegistry>();
    breaker = std::make_unique<CircuitBreaker>(spec);
    breaker->BindObservability(registry->GetCounter("breaker.opens"),
                               registry->GetCounter("breaker.closes"));
  }

  std::unique_ptr<MetricsRegistry> registry;
  std::unique_ptr<CircuitBreaker> breaker;
};

sched::Model BreakerLegalityModel() {
  auto fx = std::make_shared<BreakerFixture>();
  sched::Model m;
  m.setup = [fx] { fx->Reset(); };
  for (int w = 0; w < 2; ++w) {
    m.tasks.push_back([fx, w] {
      CircuitBreaker& b = *fx->breaker;
      const int64_t base = w * 7;
      uint64_t last_opens = 0;
      const auto observe = [&] {
        const uint64_t oc = b.open_count();
        sched::Check(oc >= last_opens, "open_count went backwards");
        last_opens = oc;
      };
      b.RecordFailure(base + 10);
      observe();
      b.RecordFailure(base + 20);
      observe();
      // Past the cooldown of any open taken above: may half-open.
      (void)b.AllowRequest(base + 200);
      b.RecordSuccess(base + 210);
      observe();
    });
  }
  m.check = [fx] {
    const CircuitBreaker& b = *fx->breaker;
    const MetricsSnapshot snap = fx->registry->Snapshot();
    uint64_t opens = 0;
    uint64_t closes = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name == "breaker.opens") opens = value;
      if (name == "breaker.closes") closes = value;
    }
    sched::Check(opens == b.open_count(),
                 "opens counter diverged from breaker's own tally");
    sched::Check(opens >= closes, "more closes than opens");
    // open_count ticks on HalfOpen -> Open re-trips too (a failed probe is
    // a fresh degraded-mode entry), so opens can outrun closes by more than
    // one while re-tripping — the checker itself surfaced that schedule: a
    // worker's pre-open RecordFailure can land as a half-open probe opened
    // by its peer. What IS legal: ending closed requires the last
    // transition to have been a Close, so an open surplus is only allowed
    // while the breaker is still open or half-open.
    const bool closed = b.state() == CircuitBreaker::State::kClosed;
    sched::Check(closed || opens > closes,
                 "breaker outside closed but every open was closed");
    sched::Check(!closed || opens >= closes,
                 "breaker closed with unmatched closes");
    // Each Record* call performs at most one transition into open, and the
    // model makes six of them.
    sched::Check(opens <= 6, "more opens than recorded outcomes");
  };
  return m;
}

// ---------------------------------------------------------------------------
// Invariant family (d): EventSink single-writer discipline. One shared sink
// behind a Mutex; a CAS guard inside the critical section proves mutual
// exclusion on every schedule. The `locked = false` variant is the seeded
// dropped-lock bug the checker must catch (acceptance fixture): with the
// Mutex gone, some schedule lands a second writer between the guard's CAS
// and its reset.

struct SinkFixture {
  void Reset() {
    sink = std::make_unique<EventSink>(/*worker=*/0);
    sink->Reserve(4);
    guard.Store(0);
  }

  Mutex mu;
  Atomic<uint64_t> guard{0};
  std::unique_ptr<EventSink> sink;
};

sched::Model SharedSinkModel(bool locked) {
  auto fx = std::make_shared<SinkFixture>();
  sched::Model m;
  m.setup = [fx] { fx->Reset(); };
  for (int w = 0; w < 2; ++w) {
    m.tasks.push_back([fx, w, locked] {
      const auto record = [&] {
        uint64_t expected = 0;
        sched::Check(
            fx->guard.CompareExchange(expected,
                                      static_cast<uint64_t>(w) + 1),
            "second writer entered the sink critical section");
        OpEvent ev;
        ev.timestamp_nanos = w * 100 + 1;
        ev.type = OpType::kGet;
        ev.ok = true;
        fx->sink->Record(ev);
        fx->guard.Store(0);
      };
      if (locked) {
        MutexLock lock(fx->mu);
        record();
      } else {
        record();
      }
    });
  }
  m.check = [fx] {
    const EventStream events = fx->sink->TakeEvents();
    sched::Check(events.size() == 2, "sink lost a record");
    for (size_t i = 0; i < events.size(); ++i) {
      sched::Check(events[i].seq == i, "sink seqs not contiguous");
    }
  };
  return m;
}

// ---------------------------------------------------------------------------
// Model registry: shared by the gtest cases and the --sched-model /
// --sched-replay command line (the replay workflow).

using ModelFactory = sched::Model (*)();

sched::Model MergePipeline2() { return MergePipelineModel(2); }
sched::Model MergePipeline3() { return MergePipelineModel(3); }
sched::Model PairLocked() { return PairInvariantModel(true); }
sched::Model PairDroppedLock() { return PairInvariantModel(false); }
sched::Model SinkLocked() { return SharedSinkModel(true); }
sched::Model SinkDroppedLock() { return SharedSinkModel(false); }

const std::map<std::string, ModelFactory>& ModelRegistry() {
  static const std::map<std::string, ModelFactory> kModels = {
      {"lost-update", &LostUpdateModel},
      {"pair-locked", &PairLocked},
      {"pair-dropped-lock", &PairDroppedLock},
      {"deadlock", &DeadlockModel},
      {"condvar-handoff", &CondVarHandoffModel},
      {"merge-pipeline-2w", &MergePipeline2},
      {"merge-pipeline-3w", &MergePipeline3},
      {"queue-conservation", &QueueConservationModel},
      {"breaker-legality", &BreakerLegalityModel},
      {"sink-locked", &SinkLocked},
      {"sink-dropped-lock", &SinkDroppedLock},
  };
  return kModels;
}

// ---------------------------------------------------------------------------
// Checker self-tests: seeded bugs are caught and replayable.

TEST(SchedChecker, FindsLostUpdateAndReplayReproducesIt) {
  const sched::ExploreResult result = sched::Explore(LostUpdateModel());
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_NE(result.violation->message.find("lost update"), std::string::npos);
  ASSERT_FALSE(result.violation->schedule.empty());

  // The decision string re-executes deterministically to the same failure.
  const sched::ExploreResult replay =
      sched::Replay(LostUpdateModel(), result.violation->schedule);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->message, result.violation->message);
}

TEST(SchedChecker, DroppedLockPairInvariantCaught) {
  const sched::ExploreResult result =
      sched::Explore(PairInvariantModel(false));
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_NE(result.violation->message.find("pair invariant"),
            std::string::npos);
  const sched::ExploreResult replay = sched::Replay(
      PairInvariantModel(false), result.violation->schedule);
  ASSERT_TRUE(replay.violation.has_value());
}

TEST(SchedChecker, CorrectLockingPassesExhaustively) {
  const sched::ExploreResult result = sched::Explore(PairInvariantModel(true));
  EXPECT_TRUE(result.ok()) << result.violation->message << "  schedule="
                           << result.violation->schedule;
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.schedules, 1u);  // The mutex still admits several orders.
}

TEST(SchedChecker, DeadlockDetectedWithSchedule) {
  const sched::ExploreResult result = sched::Explore(DeadlockModel());
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_NE(result.violation->message.find("deadlock"), std::string::npos);
  ASSERT_FALSE(result.violation->schedule.empty());
  const sched::ExploreResult replay =
      sched::Replay(DeadlockModel(), result.violation->schedule);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_NE(replay.violation->message.find("deadlock"), std::string::npos);
}

TEST(SchedChecker, CondVarHandoffCompletesOnEverySchedule) {
  const sched::ExploreResult result = sched::Explore(CondVarHandoffModel());
  EXPECT_TRUE(result.ok()) << result.violation->message << "  schedule="
                           << result.violation->schedule;
  EXPECT_TRUE(result.complete);
}

TEST(SchedChecker, ExplorationIsDeterministic) {
  const sched::ExploreResult a = sched::Explore(LostUpdateModel());
  const sched::ExploreResult b = sched::Explore(LostUpdateModel());
  ASSERT_TRUE(a.violation.has_value());
  ASSERT_TRUE(b.violation.has_value());
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.violation->schedule, b.violation->schedule);
  EXPECT_EQ(a.violation->message, b.violation->message);
}

TEST(SchedChecker, EmptyReplayRunsDefaultSchedule) {
  const sched::ExploreResult result =
      sched::Replay(PairInvariantModel(true), "");
  EXPECT_TRUE(result.ok());
}

// ---------------------------------------------------------------------------
// The real-component invariant families.

TEST(SchedModel, MergeByteIdentityUnderEverySchedule) {
  sched::Options options;
  options.max_schedules = 500000;
  const sched::ExploreResult result =
      sched::Explore(MergePipelineModel(2), options);
  EXPECT_TRUE(result.ok()) << result.violation->message << "  schedule="
                           << result.violation->schedule;
  EXPECT_TRUE(result.complete)
      << "2-worker exploration must exhaust within budget; ran "
      << result.schedules;
  EXPECT_GT(result.schedules, 1u);
}

TEST(SchedModel, QueueConservationUnderEverySchedule) {
  sched::Options options;
  options.max_schedules = 500000;
  const sched::ExploreResult result =
      sched::Explore(QueueConservationModel(), options);
  EXPECT_TRUE(result.ok()) << result.violation->message << "  schedule="
                           << result.violation->schedule;
  EXPECT_TRUE(result.complete) << "ran " << result.schedules;
}

TEST(SchedModel, BreakerTransitionsLegalUnderEverySchedule) {
  sched::Options options;
  options.max_schedules = 500000;
  const sched::ExploreResult result =
      sched::Explore(BreakerLegalityModel(), options);
  EXPECT_TRUE(result.ok()) << result.violation->message << "  schedule="
                           << result.violation->schedule;
  EXPECT_TRUE(result.complete) << "ran " << result.schedules;
}

TEST(SchedModel, SharedSinkSingleWriterHoldsWithLock) {
  const sched::ExploreResult result = sched::Explore(SharedSinkModel(true));
  EXPECT_TRUE(result.ok()) << result.violation->message << "  schedule="
                           << result.violation->schedule;
  EXPECT_TRUE(result.complete);
}

TEST(SchedModel, SharedSinkDroppedLockCaughtAndReplayed) {
  const sched::ExploreResult result = sched::Explore(SharedSinkModel(false));
  ASSERT_TRUE(result.violation.has_value())
      << "the dropped-lock sink bug must be caught";
  EXPECT_NE(result.violation->message.find("second writer"),
            std::string::npos);
  const sched::ExploreResult replay =
      sched::Replay(SharedSinkModel(false), result.violation->schedule);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->message, result.violation->message);
}

TEST(SchedModel, ThreeWorkerPipelineUnderPreemptionBound) {
  sched::Options options;
  options.preemption_bound = 2;  // CHESS-style fallback for the deep state.
  options.max_schedules = EnvFlagEnabled("LSBENCH_QUICK") ? 20000 : 200000;
  const sched::ExploreResult result =
      sched::Explore(MergePipelineModel(3), options);
  EXPECT_TRUE(result.ok()) << result.violation->message << "  schedule="
                           << result.violation->schedule;
  EXPECT_GT(result.schedules, 1u);
}

}  // namespace
}  // namespace lsbench

// ---------------------------------------------------------------------------
// Custom main: --sched-model / --sched-replay for the replay workflow;
// everything else falls through to gtest.

int main(int argc, char** argv) {
  std::string model_name;
  std::string replay;
  std::vector<char*> gtest_args;
  gtest_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sched-model=", 14) == 0) {
      model_name = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--sched-replay=", 15) == 0) {
      replay = argv[i] + 15;
    } else {
      gtest_args.push_back(argv[i]);
    }
  }

  if (!model_name.empty()) {
    const auto& registry = lsbench::ModelRegistry();
    const auto it = registry.find(model_name);
    if (it == registry.end()) {
      std::fprintf(stderr, "unknown model '%s'; available:\n",
                   model_name.c_str());
      for (const auto& [name, factory] : registry) {
        std::fprintf(stderr, "  %s\n", name.c_str());
      }
      return 2;
    }
    const lsbench::sched::ExploreResult result =
        replay.empty()
            ? lsbench::sched::Explore(it->second())
            : lsbench::sched::Replay(it->second(), replay);
    std::printf("model=%s schedules=%llu complete=%d\n", model_name.c_str(),
                static_cast<unsigned long long>(result.schedules),
                result.complete ? 1 : 0);
    if (result.violation) {
      std::printf("VIOLATION: %s\n  schedule=%s\n  replay with: "
                  "--sched-model=%s --sched-replay=%s\n",
                  result.violation->message.c_str(),
                  result.violation->schedule.c_str(), model_name.c_str(),
                  result.violation->schedule.c_str());
      return 1;
    }
    std::printf("OK: no violation on any explored schedule\n");
    return 0;
  }

  int gtest_argc = static_cast<int>(gtest_args.size());
  ::testing::InitGoogleTest(&gtest_argc, gtest_args.data());
  return RUN_ALL_TESTS();
}
