// The scenario matrix: every spec in specs/scenarios/ is discovered and
// swept in simulation mode. Each scenario must (a) declare a full [drift]
// trajectory, (b) measure within its declared tolerance transition by
// transition, (c) be byte-deterministic at workers = 1 and workers = 4, and
// (d) — for the migration scenario — make a learned SUT visibly respond to
// the drift (more retrains than a drift-free control). This is the CTest
// face of the quantified-drift tentpole: a new scenario dropped into
// specs/scenarios/ is picked up and held to the same bar automatically.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/drift.h"
#include "core/driver.h"
#include "core/event_sink.h"
#include "core/spec_text.h"
#include "data/dataset.h"
#include "obs/observability.h"
#include "report/report.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

std::vector<std::string> ScenarioFiles() {
  std::vector<std::string> files;
  const std::filesystem::path dir =
      std::filesystem::path(LSBENCH_SPEC_DIR) / "scenarios";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".lsb") {
      files.push_back(entry.path().filename().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

RunSpec LoadScenario(const std::string& name) {
  const std::string path =
      std::string(LSBENCH_SPEC_DIR) + "/scenarios/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing scenario spec: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<RunSpec> parsed = ParseRunSpecText(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

/// One full simulation run with observability on (the determinism bar).
RunResult RunScenarioOnce(RunSpec spec, uint32_t workers) {
  spec.execution.workers = workers;
  spec.observability.trace = true;
  spec.observability.profile = true;
  spec.observability.metrics = true;
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  LearnedKvSystem sut(LearnedSystemOptions(), &clock);
  Result<RunResult> result = driver.Run(spec, &sut);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

class ScenarioMatrixTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioMatrixTest, DeclaresAFullDriftTrajectory) {
  const RunSpec spec = LoadScenario(GetParam());
  EXPECT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();
  ASSERT_TRUE(spec.drift.declared)
      << GetParam() << " ships without a [drift] section";
  ASSERT_GE(spec.phases.size(), 2u);
  EXPECT_EQ(spec.drift.trajectory.size(), spec.phases.size() - 1)
      << "one declared factor per phase transition";
  EXPECT_GT(spec.drift.tolerance, 0.0);
}

TEST_P(ScenarioMatrixTest, MeasuredDriftMatchesDeclaredTrajectory) {
  const RunSpec spec = LoadScenario(GetParam());
  const DriftTrajectoryReport report = MeasureDriftTrajectory(spec);
  ASSERT_TRUE(report.declared);
  ASSERT_EQ(report.transitions.size(), spec.phases.size() - 1);
  for (size_t i = 0; i < report.transitions.size(); ++i) {
    const DriftTransitionReport& t = report.transitions[i];
    EXPECT_TRUE(t.within_tolerance)
        << GetParam() << " transition " << i << " (" << t.from_phase
        << " -> " << t.to_phase << "): measured "
        << t.components.factor << ", declared " << t.declared
        << ", tolerance " << report.tolerance;
  }
  EXPECT_TRUE(report.AllWithinTolerance());
}

TEST_P(ScenarioMatrixTest, DriftMeasurementIsByteDeterministic) {
  const RunSpec spec = LoadScenario(GetParam());
  EXPECT_EQ(DriftCsv(MeasureDriftTrajectory(spec)),
            DriftCsv(MeasureDriftTrajectory(spec)));
}

TEST_P(ScenarioMatrixTest, ByteDeterministicAtWorkers1And4) {
  for (const uint32_t workers : {1u, 4u}) {
    const RunResult a = RunScenarioOnce(LoadScenario(GetParam()), workers);
    const RunResult b = RunScenarioOnce(LoadScenario(GetParam()), workers);
    EXPECT_EQ(SerializeEventStream(a.events), SerializeEventStream(b.events))
        << GetParam() << " workers=" << workers;
    EXPECT_EQ(
        RenderTraceFile(a.observability, a.run_name, a.sut_name, workers),
        RenderTraceFile(b.observability, b.run_name, b.sut_name, workers))
        << GetParam() << " workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ScenarioMatrixTest, ::testing::ValuesIn(ScenarioFiles()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Learned-SUT response: drift must be visible in SUT behaviour, not just in
// the meter.
// ---------------------------------------------------------------------------

/// Transparent wrapper that snapshots the inner SUT's stats at every phase
/// boundary, giving the test a per-phase retrain/error timeline.
class PhaseStatsSut final : public SystemUnderTest {
 public:
  explicit PhaseStatsSut(SystemUnderTest* inner) : inner_(inner) {}

  std::string name() const override { return inner_->name(); }
  SutConcurrency concurrency() const override {
    return inner_->concurrency();
  }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override {
    return inner_->Load(sorted_pairs);
  }
  TrainReport Train() override { return inner_->Train(); }
  OpResult Execute(const Operation& op) override {
    return inner_->Execute(op);
  }
  void ExecuteBatch(const Operation& op, OpResult* results) override {
    inner_->ExecuteBatch(op, results);
  }
  void OnPhaseStart(int phase_index, bool holdout) override {
    at_phase_start_.push_back(inner_->GetStats());
    inner_->OnPhaseStart(phase_index, holdout);
  }
  SutStats GetStats() const override { return inner_->GetStats(); }
  void BindObservability(MetricsRegistry* registry) override {
    inner_->BindObservability(registry);
  }

  const std::vector<SutStats>& at_phase_start() const {
    return at_phase_start_;
  }

 private:
  SystemUnderTest* inner_;
  std::vector<SutStats> at_phase_start_;
};

/// The same spec with the drift removed: every phase becomes a copy of the
/// first (names and op counts preserved), so the SUT sees the same load
/// shape with a flat trajectory.
RunSpec FlattenToControl(RunSpec spec) {
  for (size_t i = 1; i < spec.phases.size(); ++i) {
    PhaseSpec flat = spec.phases[0];
    flat.name = spec.phases[i].name;
    flat.num_operations = spec.phases[i].num_operations;
    flat.transition_in = spec.phases[i].transition_in;
    flat.transition_operations = spec.phases[i].transition_operations;
    spec.phases[i] = flat;
  }
  spec.drift = DriftSpec();
  return spec;
}

struct LearnedRunOutcome {
  std::vector<SutStats> at_phase_start;
  SutStats final_stats;
};

LearnedRunOutcome RunLearned(const RunSpec& spec) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  LearnedKvSystem learned(LearnedSystemOptions(), &clock);
  PhaseStatsSut wrapper(&learned);
  const Result<RunResult> result = driver.Run(spec, &wrapper);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return {wrapper.at_phase_start(), wrapper.GetStats()};
}

TEST(ScenarioLearnedResponseTest, MigrationDriftTriggersMoreRetrains) {
  // hotspot_migration holds the op mix fixed and moves only the touched-key
  // distribution — exactly the signal a drift-triggered learned SUT chases.
  // Against a flattened control (same phases, hotspot never moves), the
  // drifting run must retrain strictly more.
  const RunSpec drifting = LoadScenario("hotspot_migration.lsb");
  const RunSpec control = FlattenToControl(drifting);

  const LearnedRunOutcome moved = RunLearned(drifting);
  const LearnedRunOutcome flat = RunLearned(control);

  EXPECT_GT(moved.final_stats.retrain_events, flat.final_stats.retrain_events)
      << "hotspot migration did not provoke extra retraining (drifting="
      << moved.final_stats.retrain_events
      << ", control=" << flat.final_stats.retrain_events << ")";

  // The response tracks the trajectory per phase: retraining keeps
  // happening after later boundaries, not just once at warm-up.
  ASSERT_EQ(moved.at_phase_start.size(), drifting.phases.size());
  EXPECT_GT(moved.final_stats.retrain_events,
            moved.at_phase_start.back().retrain_events)
      << "no retrains inside the final migrated phase";
}

TEST(ScenarioLearnedResponseTest, RepeatedPhasePrefixStaysQuiet) {
  // repeating_session opens with the same phase twice (declared drift 0).
  // The learned SUT must see no extra drift signal across that boundary:
  // retrains during the repeat phase are no more frequent than during the
  // initial phase.
  const RunSpec spec = LoadScenario("repeating_session.lsb");
  const LearnedRunOutcome outcome = RunLearned(spec);
  ASSERT_GE(outcome.at_phase_start.size(), 3u);
  const uint64_t during_first = outcome.at_phase_start[1].retrain_events -
                                outcome.at_phase_start[0].retrain_events;
  const uint64_t during_repeat = outcome.at_phase_start[2].retrain_events -
                                 outcome.at_phase_start[1].retrain_events;
  EXPECT_LE(during_repeat, during_first + 1)
      << "identical repeated phase provoked disproportionate retraining";
}

}  // namespace
}  // namespace lsbench
