#include <gtest/gtest.h>

#include <memory>

#include "core/driver.h"
#include "core/run_spec.h"
#include "core/specialization.h"
#include "data/dataset.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

/// A small two-phase spec over two distinct datasets, deterministic in
/// simulation mode.
RunSpec MakeTwoPhaseSpec(uint64_t seed = 42, bool with_holdout = false) {
  RunSpec spec;
  spec.name = "test_run_" + std::to_string(seed) +
              (with_holdout ? "_holdout" : "");
  spec.seed = seed;
  DatasetOptions options;
  options.num_keys = 5000;
  options.seed = seed;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));
  options.seed = seed + 1;
  spec.datasets.push_back(GenerateDataset(GaussianUnit(0.3, 0.05), options));

  PhaseSpec p0;
  p0.name = "uniform_reads";
  p0.dataset_index = 0;
  p0.mix = OperationMix::ReadMostly();
  p0.num_operations = 2000;
  spec.phases.push_back(p0);

  PhaseSpec p1;
  p1.name = "gaussian_mixed";
  p1.dataset_index = 1;
  p1.mix = OperationMix::ReadWrite();
  p1.num_operations = 2000;
  p1.transition_in = TransitionKind::kLinear;
  p1.transition_operations = 500;
  p1.holdout = with_holdout;
  spec.phases.push_back(p1);

  spec.interval_nanos = 100000000;        // 100 ms.
  spec.boxplot_sample_nanos = 10000000;   // 10 ms.
  return spec;
}

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override { BenchmarkDriver::ResetHoldoutRegistryForTesting(); }
};

TEST_F(DriverTest, ValidatesSpec) {
  BenchmarkDriver driver;
  BTreeSystem sut;
  RunSpec empty;
  EXPECT_TRUE(driver.Run(empty, &sut).status().IsInvalidArgument());

  RunSpec bad = MakeTwoPhaseSpec();
  bad.phases[0].dataset_index = 99;
  EXPECT_TRUE(driver.Run(bad, &sut).status().IsInvalidArgument());

  RunSpec zero_ops = MakeTwoPhaseSpec();
  zero_ops.phases[0].num_operations = 0;
  EXPECT_TRUE(driver.Run(zero_ops, &sut).status().IsInvalidArgument());
}

TEST_F(DriverTest, SimulatedRunProducesFullEventStream) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.virtual_service_nanos = 100000;  // 100 us per op.
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const RunSpec spec = MakeTwoPhaseSpec();

  const Result<RunResult> result = driver.Run(spec, &sut);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunResult& run = result.value();

  EXPECT_EQ(run.events.size(), 4000u);
  ASSERT_EQ(run.boundaries.size(), 2u);
  EXPECT_EQ(run.boundaries[0].operations, 2000u);
  EXPECT_EQ(run.boundaries[1].phase, 1);

  // Timestamps are sorted and phases contiguous.
  for (size_t i = 1; i < run.events.size(); ++i) {
    EXPECT_GE(run.events[i].timestamp_nanos,
              run.events[i - 1].timestamp_nanos);
    EXPECT_GE(run.events[i].phase, run.events[i - 1].phase);
  }
  // Simulated service time: 100 us/op, closed loop -> throughput 10k ops/s.
  EXPECT_NEAR(run.metrics.mean_throughput, 10000.0, 100.0);
  EXPECT_EQ(run.metrics.total_operations, 4000u);
  EXPECT_EQ(run.metrics.phases.size(), 2u);
  EXPECT_EQ(run.sut_name, "btree_system");
  EXPECT_EQ(run.load_seconds, 0.0);  // Virtual clock: load "takes" no time.
}

TEST_F(DriverTest, DeterministicInSimulationMode) {
  const RunSpec spec = MakeTwoPhaseSpec();
  auto run_once = [&spec]() {
    VirtualClock clock;
    DriverOptions options;
    options.virtual_clock = &clock;
    BenchmarkDriver driver(&clock, options);
    BTreeSystem sut;
    return driver.Run(spec, &sut).value();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); i += 97) {
    EXPECT_EQ(a.events[i].timestamp_nanos, b.events[i].timestamp_nanos);
    EXPECT_EQ(a.events[i].type, b.events[i].type);
    EXPECT_EQ(a.events[i].ok, b.events[i].ok);
  }
}

TEST_F(DriverTest, TrainEventRecordedForLearnedSystems) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  LearnedKvSystem learned;
  const RunSpec spec = MakeTwoPhaseSpec();
  const Result<RunResult> result = driver.Run(spec, &learned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().train_events.size(), 1u);
  EXPECT_EQ(result.value().train_events[0].work_items, 5000u);

  BTreeSystem traditional;
  const Result<RunResult> result2 = driver.Run(spec, &traditional);
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2.value().train_events.empty());
}

TEST_F(DriverTest, OfflineTrainingCanBeDisabled) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  LearnedKvSystem learned;
  RunSpec spec = MakeTwoPhaseSpec();
  spec.offline_training = false;
  const Result<RunResult> result = driver.Run(spec, &learned);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().train_events.empty());
}

TEST_F(DriverTest, HoldoutSpecRunsOnlyOnce) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const RunSpec spec = MakeTwoPhaseSpec(7, /*with_holdout=*/true);

  ASSERT_TRUE(driver.Run(spec, &sut).ok());
  const Result<RunResult> second = driver.Run(spec, &sut);
  EXPECT_TRUE(second.status().IsFailedPrecondition());

  // A spec without hold-out phases reruns freely.
  const RunSpec free_spec = MakeTwoPhaseSpec(8, /*with_holdout=*/false);
  EXPECT_TRUE(driver.Run(free_spec, &sut).ok());
  EXPECT_TRUE(driver.Run(free_spec, &sut).ok());
}

TEST_F(DriverTest, HoldoutEnforcementCanBeDisabled) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.enforce_holdout_once = false;
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const RunSpec spec = MakeTwoPhaseSpec(9, /*with_holdout=*/true);
  EXPECT_TRUE(driver.Run(spec, &sut).ok());
  EXPECT_TRUE(driver.Run(spec, &sut).ok());
}

TEST_F(DriverTest, OpenLoopPoissonPacesArrivals) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.virtual_service_nanos = 1000;  // Service much faster than arrivals.
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  RunSpec spec = MakeTwoPhaseSpec();
  spec.phases[0].arrival = ArrivalPattern::kPoisson;
  spec.phases[0].arrival_rate_qps = 10000.0;
  spec.phases[1].arrival = ArrivalPattern::kPoisson;
  spec.phases[1].arrival_rate_qps = 10000.0;

  const Result<RunResult> result = driver.Run(spec, &sut);
  ASSERT_TRUE(result.ok());
  // Open loop at 10k qps: mean throughput close to the offered load, not
  // the service rate (1M/s).
  EXPECT_NEAR(result.value().metrics.mean_throughput, 10000.0, 1500.0);
}

TEST_F(DriverTest, SpecializationReportSortsByPhi) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const RunSpec spec = MakeTwoPhaseSpec();
  const RunResult run = driver.Run(spec, &sut).value();

  const SpecializationReport report = BuildSpecializationReport(spec, run);
  ASSERT_EQ(report.entries.size(), 2u);
  // The baseline phase is at phi == 0 and sorts first.
  EXPECT_EQ(report.entries[0].phase, 0);
  EXPECT_NEAR(report.entries[0].phi, 0.0, 0.05);
  // The gaussian phase with a different mix is clearly dissimilar.
  EXPECT_GT(report.entries[1].phi, report.entries[0].phi + 0.1);
  EXPECT_GT(report.entries[1].data_ks, 0.2);
  EXPECT_LT(report.entries[1].workload_jaccard, 0.9);
  EXPECT_GT(report.entries[0].throughput_box.count, 0u);
}

TEST_F(DriverTest, BuildLoadImageUsesFirstPhaseDataset) {
  const RunSpec spec = MakeTwoPhaseSpec();
  const auto image = BuildLoadImage(spec);
  EXPECT_EQ(image.size(), spec.datasets[0].keys.size());
  EXPECT_EQ(image.front().first, spec.datasets[0].keys.front());
  EXPECT_TRUE(std::is_sorted(image.begin(), image.end()));
}

/// Property sweep: randomized specs (mixes, access patterns, arrivals,
/// transitions, phase counts) must always produce a structurally valid
/// event stream.
class DriverPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { BenchmarkDriver::ResetHoldoutRegistryForTesting(); }
};

TEST_P(DriverPropertyTest, RandomSpecsProduceCoherentRuns) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  RunSpec spec;
  spec.name = "prop_" + std::to_string(seed);
  spec.seed = seed;
  spec.interval_nanos = 10000000;
  spec.boxplot_sample_nanos = 1000000;

  const int num_datasets = 1 + static_cast<int>(rng.NextBounded(3));
  for (int d = 0; d < num_datasets; ++d) {
    DatasetOptions options;
    options.num_keys = 500 + rng.NextBounded(3000);
    options.seed = seed * 10 + d;
    switch (rng.NextBounded(3)) {
      case 0:
        spec.datasets.push_back(GenerateDataset(UniformUnit(), options));
        break;
      case 1:
        spec.datasets.push_back(
            GenerateDataset(LognormalUnit(0, 1.0), options));
        break;
      default:
        spec.datasets.push_back(
            GenerateDataset(ClusteredUnit(4, 0.01, seed), options));
        break;
    }
  }
  const int num_phases = 1 + static_cast<int>(rng.NextBounded(4));
  uint64_t total_ops = 0;
  for (int p = 0; p < num_phases; ++p) {
    PhaseSpec phase;
    phase.name = "p" + std::to_string(p);
    phase.dataset_index = static_cast<int>(rng.NextBounded(num_datasets));
    phase.mix.get = rng.NextDouble();
    phase.mix.scan = rng.NextDouble() * 0.3;
    phase.mix.insert = rng.NextDouble() * 0.5;
    phase.mix.update = rng.NextDouble() * 0.3;
    phase.mix.del = rng.NextDouble() * 0.2;
    phase.mix.range_count = rng.NextDouble() * 0.05;
    phase.access = static_cast<AccessPattern>(rng.NextBounded(5));
    phase.arrival = rng.NextBool(0.3) ? ArrivalPattern::kPoisson
                                      : ArrivalPattern::kClosedLoop;
    phase.arrival_rate_qps = 5000.0;
    phase.num_operations = 200 + rng.NextBounded(1500);
    phase.transition_in = static_cast<TransitionKind>(rng.NextBounded(3));
    phase.transition_operations =
        rng.NextBounded(phase.num_operations / 2 + 1);
    phase.scan_length = 1 + static_cast<uint32_t>(rng.NextBounded(50));
    total_ops += phase.num_operations;
    spec.phases.push_back(phase);
  }

  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.virtual_service_nanos = 10000;
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const Result<RunResult> result = driver.Run(spec, &sut);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunResult& run = result.value();

  // Global invariants.
  EXPECT_EQ(run.events.size(), total_ops);
  EXPECT_EQ(run.boundaries.size(), spec.phases.size());
  int32_t prev_phase = 0;
  int64_t prev_ts = 0;
  for (const OpEvent& e : run.events) {
    EXPECT_GE(e.timestamp_nanos, prev_ts);
    EXPECT_GE(e.phase, prev_phase);
    EXPECT_GE(e.latency_nanos, 0);
    prev_ts = e.timestamp_nanos;
    prev_phase = e.phase;
  }
  uint64_t phase_ops = 0;
  for (const PhaseMetrics& pm : run.metrics.phases) {
    phase_ops += pm.operations;
    EXPECT_GE(pm.duration_seconds, 0.0);
  }
  EXPECT_EQ(phase_ops, total_ops);
  EXPECT_EQ(run.metrics.cumulative.back().completed, total_ops);
  uint64_t band_total = 0;
  for (const LatencyBand& b : run.metrics.bands) band_total += b.Total();
  EXPECT_EQ(band_total, total_ops);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST_F(DriverTest, StructuralHashDistinguishesSpecs) {
  const RunSpec a = MakeTwoPhaseSpec(1);
  const RunSpec b = MakeTwoPhaseSpec(2);
  RunSpec a2 = MakeTwoPhaseSpec(1);
  EXPECT_EQ(a.StructuralHash(), a2.StructuralHash());
  EXPECT_NE(a.StructuralHash(), b.StructuralHash());
  a2.phases[1].holdout = true;
  EXPECT_NE(a.StructuralHash(), a2.StructuralHash());
}

TEST_F(DriverTest, StructuralHashCoversFaultsAndResilience) {
  const RunSpec a = MakeTwoPhaseSpec(1);
  RunSpec faulted = MakeTwoPhaseSpec(1);
  FaultWindow w;
  w.execute_fail_rate = 0.1;
  faulted.faults.windows.push_back(w);
  EXPECT_NE(a.StructuralHash(), faulted.StructuralHash());

  RunSpec resilient = MakeTwoPhaseSpec(1);
  resilient.resilience.max_retries = 3;
  EXPECT_NE(a.StructuralHash(), resilient.StructuralHash());
}

TEST_F(DriverTest, LoadFailureProducesCleanError) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  RunSpec spec = MakeTwoPhaseSpec(20);
  spec.faults.load_failures = 1;  // The single Load call fails.

  const Result<RunResult> result = driver.Run(spec, &sut);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());

  // The failed run leaves no partial state: with the fault removed, the
  // same driver reruns the spec to a full event stream.
  spec.faults.load_failures = 0;
  const Result<RunResult> retry = driver.Run(spec, &sut);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value().events.size(), 4000u);
}

TEST_F(DriverTest, HoldoutRegistryResetClearsCrossTestState) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const RunSpec spec = MakeTwoPhaseSpec(21, /*with_holdout=*/true);

  ASSERT_TRUE(driver.Run(spec, &sut).ok());
  ASSERT_FALSE(driver.Run(spec, &sut).ok());

  // A reset fully clears the registry: the spec gets a fresh single-run
  // budget, and exactly one.
  BenchmarkDriver::ResetHoldoutRegistryForTesting();
  ASSERT_TRUE(driver.Run(spec, &sut).ok());
  EXPECT_FALSE(driver.Run(spec, &sut).ok());
}

}  // namespace
}  // namespace lsbench
