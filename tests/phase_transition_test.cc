// Phase-transition coverage for the operation stream: the exact op where a
// phase boundary takes effect. An abrupt boundary must draw its very first
// operation from the new phase's distribution (no stale-generator leakage),
// a linear window must actually blend and then finish clean, and the new
// hotspot-location knob (access_param2) must move the hot region without
// perturbing historical draws at its default.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/run_spec.h"
#include "core/workload_stream.h"
#include "data/dataset.h"
#include "util/random.h"
#include "workload/access_distribution.h"
#include "workload/generator.h"
#include "workload/operation.h"

namespace lsbench {
namespace {

/// Two-phase spec with disjoint op mixes: phase 0 issues only gets, phase 1
/// only inserts — so every drawn op type names the generator it came from.
RunSpec TwoPhaseSpec(TransitionKind transition, uint64_t transition_ops) {
  RunSpec spec;
  spec.name = "phase_transition";
  spec.seed = 11;
  DatasetOptions options;
  options.num_keys = 5000;
  options.seed = 3;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));

  PhaseSpec reads;
  reads.name = "reads";
  reads.mix.get = 1.0;
  reads.num_operations = 2000;
  spec.phases.push_back(reads);

  PhaseSpec writes;
  writes.name = "writes";
  writes.mix.get = 0.0;  // The mix defaults to pure gets; make it pure inserts.
  writes.mix.insert = 1.0;
  writes.num_operations = 2000;
  writes.transition_in = transition;
  writes.transition_operations = transition_ops;
  spec.phases.push_back(writes);
  return spec;
}

std::vector<OpType> DrawPhase(WorkloadStream* stream, size_t phase_idx,
                              const RunSpec& spec) {
  const PhaseSpec& phase = spec.phases[phase_idx];
  stream->BeginPhase(phase_idx, phase.num_operations,
                     phase.transition_operations, /*now_rel_nanos=*/0);
  std::vector<OpType> types;
  while (stream->HasNext()) types.push_back(stream->Next().op.type);
  return types;
}

TEST(PhaseTransitionTest, AbruptBoundaryFirstOpIsFromTheNewDistribution) {
  const RunSpec spec = TwoPhaseSpec(TransitionKind::kAbrupt, 0);
  WorkloadStream stream(&spec, Rng(spec.seed), /*rate_scale=*/1.0);
  const std::vector<OpType> phase0 = DrawPhase(&stream, 0, spec);
  const std::vector<OpType> phase1 = DrawPhase(&stream, 1, spec);

  for (const OpType t : phase0) ASSERT_EQ(t, OpType::kGet);
  ASSERT_FALSE(phase1.empty());
  // The very first op after the boundary — and every one after it — comes
  // from the new phase's generator.
  for (size_t i = 0; i < phase1.size(); ++i) {
    ASSERT_EQ(phase1[i], OpType::kInsert) << "op " << i << " after boundary";
  }
}

TEST(PhaseTransitionTest, AbruptTransitionOpsRequestedButKindAbruptStillCut) {
  // transition_operations > 0 with kAbrupt is a no-op window: the blend
  // only arms for non-abrupt kinds.
  const RunSpec spec = TwoPhaseSpec(TransitionKind::kAbrupt, 1000);
  WorkloadStream stream(&spec, Rng(spec.seed), /*rate_scale=*/1.0);
  (void)DrawPhase(&stream, 0, spec);
  const std::vector<OpType> phase1 = DrawPhase(&stream, 1, spec);
  for (const OpType t : phase1) ASSERT_EQ(t, OpType::kInsert);
}

TEST(PhaseTransitionTest, AbruptPhaseMatchesStandaloneGenerator) {
  // The documented fork discipline: phase i's generator is seeded from
  // root.Fork(i * 2 + 1).Next(). An abrupt closed-loop phase therefore
  // replays a standalone OperationGenerator draw for draw.
  const RunSpec spec = TwoPhaseSpec(TransitionKind::kAbrupt, 0);
  WorkloadStream stream(&spec, Rng(spec.seed), /*rate_scale=*/1.0);
  (void)DrawPhase(&stream, 0, spec);

  OperationGenerator reference(&spec.datasets[0], spec.phases[1],
                               Rng(spec.seed).Fork(1 * 2 + 1).Next());
  stream.BeginPhase(1, spec.phases[1].num_operations, 0, 0);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(stream.HasNext());
    const Operation from_stream = stream.Next().op;
    const Operation from_reference = reference.Next();
    ASSERT_EQ(from_stream.type, from_reference.type) << "op " << i;
    ASSERT_EQ(from_stream.key, from_reference.key) << "op " << i;
  }
}

TEST(PhaseTransitionTest, LinearWindowBlendsThenRunsClean) {
  const uint64_t window = 1000;
  const RunSpec spec = TwoPhaseSpec(TransitionKind::kLinear, window);
  WorkloadStream stream(&spec, Rng(spec.seed), /*rate_scale=*/1.0);
  (void)DrawPhase(&stream, 0, spec);
  const std::vector<OpType> phase1 = DrawPhase(&stream, 1, spec);
  ASSERT_EQ(phase1.size(), spec.phases[1].num_operations);

  // Inside the window both distributions appear; the old phase's share
  // fades (first half of the window leans old, second half leans new).
  size_t old_first_half = 0, old_second_half = 0, old_after_window = 0;
  for (size_t i = 0; i < phase1.size(); ++i) {
    const bool from_old = phase1[i] == OpType::kGet;
    if (i < window / 2) {
      old_first_half += from_old ? 1 : 0;
    } else if (i < window) {
      old_second_half += from_old ? 1 : 0;
    } else {
      old_after_window += from_old ? 1 : 0;
    }
  }
  EXPECT_GT(old_first_half, 0u);
  EXPECT_GT(old_second_half, 0u);
  EXPECT_GT(old_first_half, old_second_half);
  // Past the window the old generator is never consulted again.
  EXPECT_EQ(old_after_window, 0u);
}

TEST(PhaseTransitionTest, PeekAcrossBoundaryDoesNotPerturbTheStream) {
  // Peeking every op (the service driver's pattern) yields the same type
  // sequence as plain Next() calls, across the phase boundary included.
  const RunSpec spec = TwoPhaseSpec(TransitionKind::kLinear, 500);
  WorkloadStream plain(&spec, Rng(spec.seed), 1.0);
  WorkloadStream peeked(&spec, Rng(spec.seed), 1.0);
  for (size_t phase = 0; phase < spec.phases.size(); ++phase) {
    const PhaseSpec& p = spec.phases[phase];
    plain.BeginPhase(phase, p.num_operations, p.transition_operations, 0);
    peeked.BeginPhase(phase, p.num_operations, p.transition_operations, 0);
    while (plain.HasNext()) {
      const OpType via_peek = peeked.Peek().op.type;
      ASSERT_EQ(peeked.Next().op.type, via_peek);
      ASSERT_EQ(plain.Next().op.type, via_peek);
    }
    ASSERT_FALSE(peeked.HasNext());
  }
}

// ---------------------------------------------------------------------------
// The hotspot-location knob feeding cross-phase drift
// ---------------------------------------------------------------------------

TEST(PhaseTransitionTest, HotStartZeroReproducesHistoricalDraws) {
  // access_param2 = 0 must be bit-for-bit the historical two-argument
  // hotspot: same RNG consumption, same ranks.
  HotSpotAccess historical(0.1, 0.9);
  HotSpotAccess with_knob(0.1, 0.9, 0.0);
  Rng a(77), b(77);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(historical.NextRank(&a, 10000), with_knob.NextRank(&b, 10000));
  }
}

TEST(PhaseTransitionTest, HotStartMovesTheHotRegion) {
  // With hot_start = 0.5 the 10%-wide hot region covers ranks
  // [5000, 6000); 90% of draws must land there, none of the cold draws are
  // lost, and the equivalent phase spec routes the knob through the
  // generator factory.
  HotSpotAccess moved(0.1, 0.9, 0.5);
  Rng rng(78);
  const uint64_t population = 10000;
  uint64_t in_region = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t rank = moved.NextRank(&rng, population);
    ASSERT_LT(rank, population);
    if (rank >= 5000 && rank < 6000) ++in_region;
  }
  EXPECT_NEAR(static_cast<double>(in_region) / draws, 0.9, 0.02);

  const auto via_factory =
      MakeAccessDistribution(AccessPattern::kHotSpot, 0.1, 0.5);
  Rng check(78);
  uint64_t factory_in_region = 0;
  for (int i = 0; i < draws; ++i) {
    const uint64_t rank = via_factory->NextRank(&check, population);
    if (rank >= 5000 && rank < 6000) ++factory_in_region;
  }
  EXPECT_EQ(factory_in_region, in_region);
}

TEST(PhaseTransitionTest, HotStartWrapsAroundTheRankSpace) {
  // hot_start = 0.95 with a 10% hot fraction wraps: the hot region is
  // [9500, 10000) plus [0, 500).
  HotSpotAccess wrapped(0.1, 0.9, 0.95);
  Rng rng(79);
  const uint64_t population = 10000;
  uint64_t in_region = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const uint64_t rank = wrapped.NextRank(&rng, population);
    ASSERT_LT(rank, population);
    if (rank >= 9500 || rank < 500) ++in_region;
  }
  EXPECT_NEAR(static_cast<double>(in_region) / draws, 0.9, 0.02);
}

}  // namespace
}  // namespace lsbench
