#include <gtest/gtest.h>

#include "sched/scheduler.h"

namespace lsbench {
namespace {

Job MakeJob(uint64_t id, double arrival, double service, int cls = 0,
            double size_hint = 1.0) {
  Job job;
  job.id = id;
  job.arrival_seconds = arrival;
  job.true_service_seconds = service;
  job.query_class = cls;
  job.size_hint = size_hint;
  return job;
}

TEST(FifoPolicyTest, PicksEarliestArrival) {
  FifoPolicy policy;
  const std::vector<Job> ready = {MakeJob(0, 5.0, 1.0), MakeJob(1, 2.0, 1.0),
                                  MakeJob(2, 9.0, 1.0)};
  EXPECT_EQ(policy.PickNext(ready), 1u);
}

TEST(OracleSjfPolicyTest, PicksShortestJob) {
  OracleSjfPolicy policy;
  const std::vector<Job> ready = {MakeJob(0, 0.0, 5.0), MakeJob(1, 0.0, 0.5),
                                  MakeJob(2, 0.0, 2.0)};
  EXPECT_EQ(policy.PickNext(ready), 1u);
}

TEST(LearnedSjfPolicyTest, LearnsPerClassRates) {
  LearnedSjfPolicy policy;
  // Teach: class 0 costs 1 ms/row, class 1 costs 1 us/row.
  for (int i = 0; i < 200; ++i) {
    policy.OnJobFinished(MakeJob(0, 0, 0, /*cls=*/0, /*size=*/10.0), 0.01);
    policy.OnJobFinished(MakeJob(1, 0, 0, /*cls=*/1, /*size=*/10.0), 1e-5);
  }
  EXPECT_NEAR(policy.Predict(MakeJob(2, 0, 0, 0, 10.0)), 0.01, 0.002);
  EXPECT_NEAR(policy.Predict(MakeJob(3, 0, 0, 1, 10.0)), 1e-5, 5e-6);
  // And uses them: prefers the cheap class-1 job.
  const std::vector<Job> ready = {MakeJob(0, 0, 0, 0, 10.0),
                                  MakeJob(1, 0, 0, 1, 10.0)};
  EXPECT_EQ(policy.PickNext(ready), 1u);
}

TEST(SimulateScheduleTest, EmptyAndSingleJob) {
  FifoPolicy policy;
  EXPECT_EQ(SimulateSchedule({}, &policy).jobs, 0u);
  const ScheduleMetrics m =
      SimulateSchedule({MakeJob(0, 1.0, 2.0)}, &policy);
  EXPECT_EQ(m.jobs, 1u);
  EXPECT_DOUBLE_EQ(m.makespan_seconds, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_flow_seconds, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_slowdown, 1.0);
}

TEST(SimulateScheduleTest, SjfBeatsFifoOnFlowTime) {
  // The server is busy with a warm-up job while a long job and many short
  // ones queue up; the discipline then decides who goes first.
  std::vector<Job> jobs = {MakeJob(0, 0.0, 0.5), MakeJob(1, 0.1, 10.0)};
  for (int i = 2; i <= 21; ++i) {
    jobs.push_back(MakeJob(i, 0.2 + 0.001 * i, 0.1));
  }
  FifoPolicy fifo;
  OracleSjfPolicy sjf;
  const ScheduleMetrics mf = SimulateSchedule(jobs, &fifo);
  const ScheduleMetrics ms = SimulateSchedule(jobs, &sjf);
  // Same total work, very different mean flow times.
  EXPECT_NEAR(mf.makespan_seconds, ms.makespan_seconds, 1e-9);
  EXPECT_LT(ms.mean_flow_seconds, mf.mean_flow_seconds * 0.5);
  EXPECT_LT(ms.mean_slowdown, mf.mean_slowdown);
}

TEST(SimulateScheduleTest, LearnedSjfApproachesOracleWithFeedback) {
  // Overloaded server so queueing discipline matters.
  const std::vector<Job> jobs = GenerateJobs(8000, 20000.0, 20.0, 7);
  FifoPolicy fifo;
  OracleSjfPolicy oracle;
  LearnedSjfPolicy learned;
  const ScheduleMetrics mf = SimulateSchedule(jobs, &fifo);
  const ScheduleMetrics mo = SimulateSchedule(jobs, &oracle);
  const ScheduleMetrics ml = SimulateSchedule(jobs, &learned);
  // Oracle <= learned <= fifo in mean slowdown (learned close to oracle).
  EXPECT_LT(mo.mean_slowdown, ml.mean_slowdown + 1e-9);
  EXPECT_LT(ml.mean_slowdown, mf.mean_slowdown);
  EXPECT_LT(ml.mean_slowdown, mo.mean_slowdown * 5.0);
}

TEST(GenerateJobsTest, DeterministicAndWellFormed) {
  const auto a = GenerateJobs(500, 1000.0, 1.0, 42);
  const auto b = GenerateJobs(500, 1000.0, 1.0, 42);
  ASSERT_EQ(a.size(), 500u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].true_service_seconds, b[i].true_service_seconds);
    EXPECT_GT(a[i].true_service_seconds, 0.0);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
  }
}

TEST(GenerateJobsTest, RateScaleScalesServiceTimes) {
  const auto slow = GenerateJobs(1000, 1000.0, 10.0, 9);
  const auto fast = GenerateJobs(1000, 1000.0, 1.0, 9);
  double slow_sum = 0, fast_sum = 0;
  for (size_t i = 0; i < slow.size(); ++i) {
    slow_sum += slow[i].true_service_seconds;
    fast_sum += fast[i].true_service_seconds;
  }
  EXPECT_NEAR(slow_sum / fast_sum, 10.0, 0.01);
}

TEST(SimulateScheduleTest, ShiftDegradesThenRecovery) {
  // Phase 1 trains the learned policy at rate_scale 1; phase 2 multiplies
  // analytics cost 50x (environment change). The learned policy's relative
  // gap to the oracle right after the shift shrinks again by the end.
  LearnedSjfPolicy learned;
  const auto phase1 = GenerateJobs(5000, 20000.0, 20.0, 11);
  SimulateSchedule(phase1, &learned);  // Train via feedback.
  // After training, predictions for the trained classes are in the right
  // ballpark (within 3x of the class means).
  const Job probe = MakeJob(0, 0, 0, /*cls=*/2, /*size=*/10000.0);
  const double predicted = learned.Predict(probe);
  EXPECT_GT(predicted, 20.0 * 1e-6 * 10000.0 * 0.3);
  EXPECT_LT(predicted, 20.0 * 1e-6 * 10000.0 * 3.0);
}

}  // namespace
}  // namespace lsbench
