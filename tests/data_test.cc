#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataset.h"
#include "data/distribution.h"
#include "data/quality.h"
#include "index/kv_index.h"
#include "stats/descriptive.h"
#include "stats/similarity.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

class DistributionTest
    : public ::testing::TestWithParam<
          std::function<std::unique_ptr<UnitDistribution>()>> {};

TEST_P(DistributionTest, SamplesStayInUnitInterval) {
  const auto dist = GetParam()();
  Rng rng(101);
  for (int i = 0; i < 20000; ++i) {
    const double v = dist->Sample(&rng);
    ASSERT_GE(v, 0.0) << dist->name();
    ASSERT_LT(v, 1.0) << dist->name();
  }
}

TEST_P(DistributionTest, HasDescriptiveName) {
  EXPECT_FALSE(GetParam()()->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionTest,
    ::testing::Values(
        [] { return MakeUniform(); }, [] { return MakeGaussian(0.5, 0.1); },
        [] { return MakeLognormal(0.0, 1.0); }, [] { return MakePareto(1.5); },
        [] { return MakeClustered(5, 0.02, 3); }));

TEST(DistributionTest, GaussianConcentratesAroundMean) {
  GaussianUnit g(0.5, 0.05);
  Rng rng(103);
  StreamingStats s;
  for (int i = 0; i < 20000; ++i) s.Add(g.Sample(&rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_LT(s.StdDev(), 0.1);
}

TEST(DistributionTest, UniformIsFlat) {
  UniformUnit u;
  Rng rng(107);
  StreamingStats s;
  for (int i = 0; i < 20000; ++i) s.Add(u.Sample(&rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.StdDev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(DistributionTest, ParetoIsRightSkewed) {
  ParetoUnit p(1.2);
  Rng rng(109);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(p.Sample(&rng));
  // Median far below mean: heavy right tail.
  const double median = Quantile(samples, 0.5);
  double mean = 0;
  for (double v : samples) mean += v;
  mean /= static_cast<double>(samples.size());
  EXPECT_LT(median, mean * 0.5);
}

TEST(DistributionTest, BlendInterpolates) {
  UniformUnit a;
  GaussianUnit b(0.9, 0.01);
  Rng rng(113);
  BlendUnit pure_a(&a, &b, 0.0);
  BlendUnit pure_b(&a, &b, 1.0);
  StreamingStats sa, sb;
  for (int i = 0; i < 10000; ++i) {
    sa.Add(pure_a.Sample(&rng));
    sb.Add(pure_b.Sample(&rng));
  }
  EXPECT_NEAR(sa.mean(), 0.5, 0.02);
  EXPECT_NEAR(sb.mean(), 0.9, 0.02);
}

TEST(DistributionTest, MixtureRespectsWeights) {
  std::vector<std::unique_ptr<UnitDistribution>> comps;
  comps.push_back(MakeGaussian(0.1, 0.001));
  comps.push_back(MakeGaussian(0.9, 0.001));
  MixtureUnit mix(std::move(comps), {0.8, 0.2});
  Rng rng(127);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (mix.Sample(&rng) < 0.5) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.8, 0.02);
}

// ---------------------------------------------------------------------------
// Dataset generation
// ---------------------------------------------------------------------------

TEST(DatasetTest, ExactSizeSortedUnique) {
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  EXPECT_EQ(ds.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(ds.keys.begin(), ds.keys.end()));
  const std::set<Key> unique(ds.keys.begin(), ds.keys.end());
  EXPECT_EQ(unique.size(), ds.keys.size());
  for (Key k : ds.keys) EXPECT_LT(k, options.domain_max);
}

TEST(DatasetTest, DeterministicBySeed) {
  DatasetOptions options;
  options.num_keys = 1000;
  options.seed = 77;
  const Dataset a = GenerateDataset(LognormalUnit(0, 1), options);
  const Dataset b = GenerateDataset(LognormalUnit(0, 1), options);
  EXPECT_EQ(a.keys, b.keys);
  options.seed = 78;
  const Dataset c = GenerateDataset(LognormalUnit(0, 1), options);
  EXPECT_NE(a.keys, c.keys);
}

TEST(DatasetTest, NormalizedKeysInUnitInterval) {
  DatasetOptions options;
  options.num_keys = 100;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  for (double v : ds.NormalizedKeys()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(DatasetTest, DistributionShapesAreDistinguishable) {
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset uniform = GenerateDataset(UniformUnit(), options);
  const Dataset skewed = GenerateDataset(LognormalUnit(0, 2), options);
  const double ks =
      KolmogorovSmirnov(uniform.NormalizedKeys(), skewed.NormalizedKeys())
          .statistic;
  EXPECT_GT(ks, 0.3);
}

TEST(DriftSequenceTest, EndpointsMatchSourcesAndDriftIsGradual) {
  DatasetOptions options;
  options.num_keys = 3000;
  const UniformUnit from;
  const GaussianUnit to(0.2, 0.02);
  const auto seq = GenerateDriftSequence(from, to, 5, options);
  ASSERT_EQ(seq.size(), 5u);

  // Consecutive steps are closer than the endpoints.
  const double end_to_end =
      KolmogorovSmirnov(seq.front().NormalizedKeys(),
                        seq.back().NormalizedKeys())
          .statistic;
  for (size_t i = 1; i < seq.size(); ++i) {
    const double step = KolmogorovSmirnov(seq[i - 1].NormalizedKeys(),
                                          seq[i].NormalizedKeys())
                            .statistic;
    EXPECT_LT(step, end_to_end);
  }
  EXPECT_GT(end_to_end, 0.4);
}

// ---------------------------------------------------------------------------
// Email generator
// ---------------------------------------------------------------------------

TEST(EmailGeneratorTest, ProducesPlausibleAddresses) {
  EmailGenerator gen(1);
  for (int i = 0; i < 100; ++i) {
    const std::string email = gen.Next();
    const size_t at = email.find('@');
    ASSERT_NE(at, std::string::npos) << email;
    EXPECT_GT(at, 0u);
    EXPECT_NE(email.find(".example"), std::string::npos) << email;
  }
}

TEST(EmailGeneratorTest, DeterministicBySeed) {
  EmailGenerator a(9), b(9), c(10);
  EXPECT_EQ(a.Next(), b.Next());
  // Different seeds diverge quickly (not necessarily on the first draw).
  bool diverged = false;
  EmailGenerator a2(9);
  for (int i = 0; i < 20 && !diverged; ++i) {
    diverged = a2.Next() != c.Next();
  }
  EXPECT_TRUE(diverged);
}

TEST(EmailGeneratorTest, ToKeyIsPrefixOrderPreserving) {
  EXPECT_LT(EmailGenerator::ToKey("aaa@x.example"),
            EmailGenerator::ToKey("bbb@x.example"));
  EXPECT_EQ(EmailGenerator::ToKey("abcdefgh-tail-1"),
            EmailGenerator::ToKey("abcdefgh-tail-2"));  // Same 8-byte prefix.
}

TEST(EmailGeneratorTest, DatasetIsSortedUniqueNonUniform) {
  const Dataset ds = GenerateEmailDataset(2000, 42);
  EXPECT_GT(ds.size(), 1000u);  // Prefix collisions may trim a few.
  EXPECT_TRUE(std::is_sorted(ds.keys.begin(), ds.keys.end()));
  // Email keys are clustered by first letter: far from uniform.
  const DataQualityReport report = ScoreDataset(ds);
  EXPECT_GT(report.skew_score, 30.0);
}

// ---------------------------------------------------------------------------
// Quality scorer (the paper's §V-C tool)
// ---------------------------------------------------------------------------

TEST(QualityTest, UniformDataGetsLowMarks) {
  DatasetOptions options;
  options.num_keys = 20000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  const DataQualityReport report = ScoreDataset(ds);
  EXPECT_LT(report.overall, 20.0);
  EXPECT_LT(report.skew_score, 10.0);
  EXPECT_NE(report.summary.find("poor"), std::string::npos);
}

TEST(QualityTest, SkewedDataScoresHigherThanUniform) {
  DatasetOptions options;
  options.num_keys = 20000;
  const Dataset uniform = GenerateDataset(UniformUnit(), options);
  const Dataset skewed = GenerateDataset(ClusteredUnit(8, 0.005, 5), options);
  EXPECT_GT(ScoreDataset(skewed).overall, ScoreDataset(uniform).overall + 15);
}

TEST(QualityTest, DriftRaisesSequenceScore) {
  DatasetOptions options;
  options.num_keys = 5000;
  const UniformUnit from;
  const GaussianUnit to(0.1, 0.01);
  const auto drifting = GenerateDriftSequence(from, to, 4, options);
  // A static sequence: same distribution four times.
  const auto same = GenerateDriftSequence(from, from, 4, options);
  const DataQualityReport drift_report = ScoreDatasetSequence(drifting);
  const DataQualityReport static_report = ScoreDatasetSequence(same);
  EXPECT_GT(drift_report.drift_score, static_report.drift_score + 20);
  EXPECT_GT(drift_report.overall, static_report.overall);
}

TEST(QualityTest, EmptySequence) {
  EXPECT_EQ(ScoreDatasetSequence({}).overall, 0.0);
}

TEST(QualityTest, WorkloadScorerPrefersVariedSkewedTraces) {
  // Flat arrivals, uniform access: poor.
  const std::vector<double> flat(50, 100.0);
  const std::vector<double> uniform_access(1000, 5.0);
  const WorkloadQualityReport poor =
      ScoreWorkloadTrace(flat, uniform_access);
  EXPECT_LT(poor.overall, 15.0);

  // Bursty arrivals, zipf-ish access: good.
  std::vector<double> bursty;
  for (int i = 0; i < 50; ++i) bursty.push_back(i % 10 == 0 ? 1000.0 : 50.0);
  std::vector<double> skewed_access;
  for (int i = 0; i < 1000; ++i) {
    skewed_access.push_back(i < 50 ? 500.0 : 1.0);
  }
  const WorkloadQualityReport good =
      ScoreWorkloadTrace(bursty, skewed_access);
  EXPECT_GT(good.overall, 50.0);
  EXPECT_GT(good.load_variation_score, 30.0);
  EXPECT_GT(good.access_skew_score, 50.0);
}

}  // namespace
}  // namespace lsbench
