#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/spec_text.h"

namespace lsbench {
namespace {

/// The sample specs shipped in specs/ must stay parseable and valid; this
/// guards the files the README tells users to run first. LSBENCH_SPEC_DIR
/// is injected by the test's CMake target.
class SpecFilesTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecFilesTest, ShippedSpecParsesAndValidates) {
  const std::string path = std::string(LSBENCH_SPEC_DIR) + "/" + GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing spec file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const Result<RunSpec> spec = ParseRunSpecText(buffer.str());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec.value().Validate().ok());
  EXPECT_FALSE(spec.value().datasets.empty());
  EXPECT_FALSE(spec.value().phases.empty());
}

INSTANTIATE_TEST_SUITE_P(ShippedSpecs, SpecFilesTest,
                         ::testing::Values("concurrent_demo.lsb",
                                           "demo_shift.lsb",
                                           "holdout_eval.lsb",
                                           "resilience_demo.lsb",
                                           "service_overload_demo.lsb",
                                           "scenarios/diurnal_burst.lsb",
                                           "scenarios/flash_crowd.lsb",
                                           "scenarios/hotspot_migration.lsb",
                                           "scenarios/repeating_session.lsb"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '.' || c == '/') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace lsbench
