#include <gtest/gtest.h>

#include <algorithm>

#include "data/dataset.h"
#include "learned/join.h"
#include "util/random.h"

namespace lsbench {
namespace {

std::vector<Key> SortedSample(size_t n, uint64_t seed, Key stride = 1) {
  Rng rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  Key k = 0;
  for (size_t i = 0; i < n; ++i) {
    k += 1 + rng.NextBounded(stride * 2);
    keys.push_back(k);
  }
  return keys;
}

std::vector<Key> Intersect(const std::vector<Key>& a,
                           const std::vector<Key>& b) {
  std::vector<Key> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(JoinTest, AllKernelsAgreeWithSetIntersection) {
  const auto a = SortedSample(20000, 1, 50);
  const auto b = SortedSample(15000, 2, 70);
  const auto expected = Intersect(a, b);
  ASSERT_FALSE(expected.empty());

  std::vector<Key> merge_out, hash_out, learned_out;
  const JoinStats m = MergeJoin(a, b, &merge_out);
  const JoinStats h = HashJoin(a, b, &hash_out);
  const JoinStats l = LearnedJoin(a, b, &learned_out);

  EXPECT_EQ(m.matches, expected.size());
  EXPECT_EQ(h.matches, expected.size());
  EXPECT_EQ(l.matches, expected.size());
  EXPECT_EQ(merge_out, expected);
  EXPECT_EQ(learned_out, expected);
  std::sort(hash_out.begin(), hash_out.end());
  EXPECT_EQ(hash_out, expected);
}

TEST(JoinTest, DisjointSides) {
  std::vector<Key> a, b;
  for (Key i = 0; i < 1000; ++i) {
    a.push_back(i * 2);      // Evens.
    b.push_back(i * 2 + 1);  // Odds.
  }
  EXPECT_EQ(MergeJoin(a, b).matches, 0u);
  EXPECT_EQ(HashJoin(a, b).matches, 0u);
  EXPECT_EQ(LearnedJoin(a, b).matches, 0u);
}

TEST(JoinTest, IdenticalSides) {
  const auto a = SortedSample(5000, 3);
  EXPECT_EQ(MergeJoin(a, a).matches, a.size());
  EXPECT_EQ(HashJoin(a, a).matches, a.size());
  EXPECT_EQ(LearnedJoin(a, a).matches, a.size());
}

TEST(JoinTest, EmptyInputs) {
  const std::vector<Key> a = {1, 2, 3};
  EXPECT_EQ(MergeJoin(a, {}).matches, 0u);
  EXPECT_EQ(HashJoin({}, a).matches, 0u);
  EXPECT_EQ(LearnedJoin({}, {}).matches, 0u);
}

TEST(JoinTest, LearnedJoinSkipsWorkOnSmallProbeSide) {
  // A tiny probe side against a huge build side: the learned join's
  // comparison count is ~|large| (model fit) + |small| * log(window),
  // far below merge join's full co-scan when matches force it through
  // the whole large side.
  const auto large = SortedSample(200000, 4, 10);
  std::vector<Key> small;
  for (size_t i = 0; i < large.size(); i += 10000) small.push_back(large[i]);
  const JoinStats merge = MergeJoin(small, large);
  const JoinStats learned = LearnedJoin(small, large);
  EXPECT_EQ(merge.matches, learned.matches);
  EXPECT_EQ(learned.matches, small.size());
  // Probe work after the fit: learned pays a tiny window per probe.
  EXPECT_LT(learned.comparisons, merge.comparisons + large.size());
  const uint64_t probe_work = learned.comparisons - large.size();
  EXPECT_LT(probe_work, small.size() * 64);
}

TEST(JoinTest, HighKeysSurvivePrecisionCollapse) {
  // Same 2^63 double-collapse hazard as the PGM index.
  std::vector<Key> a, b;
  const Key base = Key{1} << 63;
  for (Key i = 0; i < 3000; ++i) {
    a.push_back(base + i * 3);
    if (i % 2 == 0) b.push_back(base + i * 3);
  }
  const JoinStats l = LearnedJoin(b, a);
  EXPECT_EQ(l.matches, b.size());
}

class JoinOverlapTest : public ::testing::TestWithParam<double> {};

TEST_P(JoinOverlapTest, MatchCountTracksOverlap) {
  const double overlap = GetParam();
  Rng rng(7);
  std::vector<Key> a = SortedSample(10000, 8, 20);
  std::vector<Key> b;
  for (Key k : a) {
    if (rng.NextBool(overlap)) b.push_back(k);
  }
  // Pad b with non-matching keys so sizes stay comparable.
  Key tail = a.back();
  while (b.size() < a.size()) {
    tail += 1 + rng.NextBounded(40);
    b.push_back(tail);
  }
  const JoinStats m = MergeJoin(a, b);
  const JoinStats l = LearnedJoin(a, b);
  EXPECT_EQ(m.matches, l.matches);
  EXPECT_NEAR(static_cast<double>(m.matches), overlap * 10000, 500);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, JoinOverlapTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace lsbench
