#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "data/dataset.h"
#include "workload/access_distribution.h"
#include "workload/arrival.h"
#include "workload/generator.h"
#include "workload/operation.h"
#include "workload/query_plan.h"
#include "workload/spec.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Operation mixes
// ---------------------------------------------------------------------------

TEST(OperationMixTest, FactoriesAreNormalizable) {
  for (const OperationMix& mix :
       {OperationMix::ReadMostly(), OperationMix::ReadWrite(),
        OperationMix::ScanHeavy(), OperationMix::InsertHeavy(),
        OperationMix::Analytic()}) {
    EXPECT_NEAR(mix.Total(), 1.0, 1e-9);
  }
}

TEST(OperationMixTest, OpTypeNames) {
  EXPECT_EQ(OpTypeToString(OpType::kGet), "get");
  EXPECT_EQ(OpTypeToString(OpType::kRangeCount), "range_count");
  EXPECT_EQ(OpTypeToString(OpType::kDelete), "delete");
}

// ---------------------------------------------------------------------------
// Access distributions
// ---------------------------------------------------------------------------

TEST(AccessDistributionTest, UniformCoversRange) {
  UniformAccess access;
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[access.NextRank(&rng, 10)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(AccessDistributionTest, ZipfianIsSkewed) {
  ZipfianAccess access(0.99, /*scramble=*/false);
  Rng rng(3);
  const uint64_t population = 10000;
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[access.NextRank(&rng, population)];
  // Rank 0 is by far the hottest; the top 100 ranks dominate.
  int top100 = 0;
  for (uint64_t r = 0; r < 100; ++r) {
    const auto it = counts.find(r);
    if (it != counts.end()) top100 += it->second;
  }
  EXPECT_GT(static_cast<double>(top100) / n, 0.4);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(AccessDistributionTest, ZipfianScrambleSpreadsHotKeys) {
  ZipfianAccess access(0.99, /*scramble=*/true);
  Rng rng(5);
  const uint64_t population = 10000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[access.NextRank(&rng, population)];
  // Still skewed overall (few distinct ranks dominate)...
  std::vector<int> freq;
  for (const auto& [r, c] : counts) freq.push_back(c);
  std::sort(freq.begin(), freq.end(), std::greater<int>());
  int top = 0;
  for (size_t i = 0; i < 100 && i < freq.size(); ++i) top += freq[i];
  EXPECT_GT(static_cast<double>(top) / 100000, 0.3);
  // ...but the hottest rank is NOT rank 0 specifically (scrambled).
  uint64_t hottest = 0;
  int hottest_count = 0;
  for (const auto& [r, c] : counts) {
    if (c > hottest_count) {
      hottest_count = c;
      hottest = r;
    }
  }
  EXPECT_NE(hottest, 0u);
}

TEST(AccessDistributionTest, ZipfianHandlesGrowingPopulation) {
  ZipfianAccess access(0.9);
  Rng rng(7);
  for (uint64_t pop = 1; pop < 5000; pop += 13) {
    const uint64_t r = access.NextRank(&rng, pop);
    ASSERT_LT(r, pop);
  }
}

TEST(AccessDistributionTest, HotSpotConcentratesAccesses) {
  HotSpotAccess access(0.1, 0.9);
  Rng rng(11);
  const uint64_t population = 10000;
  int hot = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (access.NextRank(&rng, population) < 1000) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.9, 0.02);
}

TEST(AccessDistributionTest, LatestFavorsNewestRanks) {
  LatestAccess access(0.99);
  Rng rng(13);
  const uint64_t population = 10000;
  int newest_decile = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (access.NextRank(&rng, population) >= 9000) ++newest_decile;
  }
  EXPECT_GT(static_cast<double>(newest_decile) / n, 0.5);
}

TEST(AccessDistributionTest, SequentialSweeps) {
  SequentialAccess access;
  Rng rng(17);
  for (uint64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(access.NextRank(&rng, 10), i % 10);
  }
}

TEST(AccessDistributionTest, FactoryProducesRequestedKinds) {
  EXPECT_EQ(MakeAccessDistribution(AccessPattern::kUniform)->name(),
            "uniform");
  EXPECT_NE(MakeAccessDistribution(AccessPattern::kZipfian, 0.8)
                ->name()
                .find("zipfian"),
            std::string::npos);
  EXPECT_NE(MakeAccessDistribution(AccessPattern::kHotSpot, 0.2)
                ->name()
                .find("hotspot"),
            std::string::npos);
  EXPECT_EQ(MakeAccessDistribution(AccessPattern::kLatest)->name(), "latest");
  EXPECT_EQ(MakeAccessDistribution(AccessPattern::kSequential)->name(),
            "sequential");
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

TEST(ArrivalTest, ClosedLoopIsZero) {
  ClosedLoopArrival arrival;
  Rng rng(19);
  EXPECT_EQ(arrival.NextInterarrivalSeconds(&rng, 0.0), 0.0);
}

TEST(ArrivalTest, PoissonMeanMatchesRate) {
  PoissonArrival arrival(500.0);
  Rng rng(23);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    total += arrival.NextInterarrivalSeconds(&rng, 0.0);
  }
  EXPECT_NEAR(total / n, 1.0 / 500.0, 1e-4);
}

TEST(ArrivalTest, DiurnalRateOscillates) {
  DiurnalArrival arrival(1000.0, 0.8, 20.0);
  Rng rng(29);
  // Sample mean interarrival at peak (t=5, sin=1) vs trough (t=15, sin=-1).
  double peak = 0.0, trough = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    peak += arrival.NextInterarrivalSeconds(&rng, 5.0);
    trough += arrival.NextInterarrivalSeconds(&rng, 15.0);
  }
  EXPECT_NEAR(peak / n, 1.0 / 1800.0, 1e-4);
  EXPECT_NEAR(trough / n, 1.0 / 200.0, 5e-4);
}

TEST(ArrivalTest, BurstyProducesFasterArrivalsDuringBursts) {
  BurstyArrival::Options options;
  options.base_qps = 100.0;
  options.burst_multiplier = 20.0;
  options.mean_burst_seconds = 1.0;
  options.mean_gap_seconds = 1.0;
  BurstyArrival arrival(options);
  Rng rng(31);
  // Simulate a long virtual timeline and collect interarrivals.
  double now = 0.0;
  std::vector<double> inter;
  for (int i = 0; i < 200000 && now < 500.0; ++i) {
    const double d = arrival.NextInterarrivalSeconds(&rng, now);
    inter.push_back(d);
    now += d;
  }
  std::sort(inter.begin(), inter.end());
  // Bimodal: the fast mode (bursts) is ~20x faster than the slow mode.
  const double p10 = inter[inter.size() / 10];
  const double p90 = inter[inter.size() * 9 / 10];
  EXPECT_GT(p90 / p10, 5.0);
}

TEST(ArrivalTest, FactoryKinds) {
  EXPECT_EQ(MakeArrivalProcess(ArrivalPattern::kClosedLoop)->name(),
            "closed_loop");
  EXPECT_NE(MakeArrivalProcess(ArrivalPattern::kPoisson, 100)->name().find(
                "poisson"),
            std::string::npos);
  EXPECT_NE(MakeArrivalProcess(ArrivalPattern::kDiurnal, 100)->name().find(
                "diurnal"),
            std::string::npos);
  EXPECT_NE(MakeArrivalProcess(ArrivalPattern::kBursty, 100)->name().find(
                "bursty"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Query plans & signatures
// ---------------------------------------------------------------------------

TEST(QueryPlanTest, HashIsStableAndStructureSensitive) {
  Operation get;
  get.type = OpType::kGet;
  get.key = 100;
  const auto plan1 = BuildPlan(get, 1000);
  const auto plan2 = BuildPlan(get, 1000);
  EXPECT_EQ(HashPlanSubtree(*plan1), HashPlanSubtree(*plan2));

  Operation scan;
  scan.type = OpType::kScan;
  scan.key = 100;
  scan.scan_length = 10;
  const auto plan3 = BuildPlan(scan, 1000);
  EXPECT_NE(HashPlanSubtree(*plan1), HashPlanSubtree(*plan3));
}

TEST(QueryPlanTest, KeyDecileBucketsDifferentiate) {
  Operation low, high;
  low.type = high.type = OpType::kGet;
  low.key = 10;    // Decile 0.
  high.key = 950;  // Decile 9.
  EXPECT_NE(HashPlanSubtree(*BuildPlan(low, 1000)),
            HashPlanSubtree(*BuildPlan(high, 1000)));
  Operation near_low;
  near_low.type = OpType::kGet;
  near_low.key = 20;  // Same decile as `low`.
  EXPECT_EQ(HashPlanSubtree(*BuildPlan(low, 1000)),
            HashPlanSubtree(*BuildPlan(near_low, 1000)));
}

TEST(QueryPlanTest, RangeCountPlanHasAggFilterScanShape) {
  Operation op;
  op.type = OpType::kRangeCount;
  op.key = 100;
  op.range_end = 200;
  const auto plan = BuildPlan(op, 1000);
  EXPECT_EQ(plan->kind, PlanNode::Kind::kAggregateCount);
  ASSERT_EQ(plan->children.size(), 1u);
  EXPECT_EQ(plan->children[0]->kind, PlanNode::Kind::kFilter);
  ASSERT_EQ(plan->children[0]->children.size(), 1u);
  EXPECT_EQ(plan->children[0]->children[0]->kind,
            PlanNode::Kind::kTableScan);
  std::unordered_set<uint64_t> hashes;
  CollectSubtreeHashes(*plan, &hashes);
  EXPECT_EQ(hashes.size(), 3u);
}

TEST(WorkloadSignatureTest, SelfSimilarityIsOne) {
  const Dataset ds = GenerateDataset(UniformUnit(), {2000, uint64_t{1} << 40, 1});
  PhaseSpec spec;
  spec.mix = OperationMix::ReadMostly();
  const WorkloadSignature a = ComputePhaseSignature(ds, spec, 500, 9);
  const WorkloadSignature b = ComputePhaseSignature(ds, spec, 500, 9);
  EXPECT_DOUBLE_EQ(a.Similarity(b), 1.0);
}

TEST(WorkloadSignatureTest, DifferentMixesAreLessSimilar) {
  const Dataset ds = GenerateDataset(UniformUnit(), {2000, uint64_t{1} << 40, 1});
  PhaseSpec reads, analytics;
  reads.mix = OperationMix::ReadMostly();
  analytics.mix = OperationMix::Analytic();
  const WorkloadSignature sig_reads = ComputePhaseSignature(ds, reads, 800, 9);
  const WorkloadSignature sig_an = ComputePhaseSignature(ds, analytics, 800, 9);
  const WorkloadSignature sig_reads2 =
      ComputePhaseSignature(ds, reads, 800, 10);
  const double cross = sig_reads.Similarity(sig_an);
  const double self_ish = sig_reads.Similarity(sig_reads2);
  EXPECT_LT(cross, self_ish);
  EXPECT_LT(cross, 0.7);
}

// ---------------------------------------------------------------------------
// Transitions
// ---------------------------------------------------------------------------

TEST(TransitionTest, MixFractionShapes) {
  EXPECT_DOUBLE_EQ(TransitionMixFraction(TransitionKind::kAbrupt, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(TransitionMixFraction(TransitionKind::kLinear, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(TransitionMixFraction(TransitionKind::kCosine, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(TransitionMixFraction(TransitionKind::kCosine, 1.0), 1.0);
  EXPECT_NEAR(TransitionMixFraction(TransitionKind::kCosine, 0.5), 0.5, 1e-9);
  // Cosine eases in: slower than linear early on.
  EXPECT_LT(TransitionMixFraction(TransitionKind::kCosine, 0.1),
            TransitionMixFraction(TransitionKind::kLinear, 0.1));
}

TEST(TransitionTest, Names) {
  EXPECT_EQ(TransitionKindToString(TransitionKind::kAbrupt), "abrupt");
  EXPECT_EQ(TransitionKindToString(TransitionKind::kLinear), "linear");
  EXPECT_EQ(TransitionKindToString(TransitionKind::kCosine), "cosine");
}

// ---------------------------------------------------------------------------
// OperationGenerator
// ---------------------------------------------------------------------------

TEST(GeneratorTest, RespectsMixFrequencies) {
  const Dataset ds = GenerateDataset(UniformUnit(), {2000, uint64_t{1} << 40, 2});
  PhaseSpec spec;
  spec.mix.get = 0.6;
  spec.mix.insert = 0.3;
  spec.mix.scan = 0.1;
  OperationGenerator gen(&ds, spec, 99);
  std::map<OpType, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().type];
  EXPECT_NEAR(static_cast<double>(counts[OpType::kGet]) / n, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kInsert]) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kScan]) / n, 0.1, 0.02);
}

TEST(GeneratorTest, DeterministicBySeed) {
  const Dataset ds = GenerateDataset(UniformUnit(), {1000, uint64_t{1} << 40, 2});
  PhaseSpec spec;
  spec.mix = OperationMix::ReadWrite();
  OperationGenerator a(&ds, spec, 7), b(&ds, spec, 7);
  for (int i = 0; i < 200; ++i) {
    const Operation oa = a.Next();
    const Operation ob = b.Next();
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_EQ(oa.key, ob.key);
  }
}

TEST(GeneratorTest, GetsTargetExistingKeys) {
  const Dataset ds = GenerateDataset(UniformUnit(), {1000, uint64_t{1} << 40, 3});
  PhaseSpec spec;
  spec.mix.get = 1.0;
  OperationGenerator gen(&ds, spec, 13);
  for (int i = 0; i < 1000; ++i) {
    const Operation op = gen.Next();
    EXPECT_TRUE(
        std::binary_search(ds.keys.begin(), ds.keys.end(), op.key));
  }
}

TEST(GeneratorTest, InsertsCreateKeysReadableLater) {
  const Dataset ds = GenerateDataset(UniformUnit(), {1000, uint64_t{1} << 40, 4});
  PhaseSpec spec;
  spec.mix.get = 0.5;
  spec.mix.insert = 0.5;
  spec.access = AccessPattern::kLatest;  // Reads chase recent inserts.
  OperationGenerator gen(&ds, spec, 17);
  for (int i = 0; i < 5000; ++i) gen.Next();
  EXPECT_GT(gen.inserted_key_count(), 1000u);
}

TEST(GeneratorTest, RangeCountWidthTracksSelectivity) {
  const Dataset ds = GenerateDataset(UniformUnit(), {1000, uint64_t{1} << 40, 5});
  PhaseSpec spec;
  spec.mix.get = 0.0;
  spec.mix.range_count = 1.0;
  spec.range_selectivity = 0.01;
  OperationGenerator gen(&ds, spec, 19);
  for (int i = 0; i < 500; ++i) {
    const Operation op = gen.Next();
    ASSERT_GE(op.range_end, op.key);
    const double width_frac =
        static_cast<double>(op.range_end - op.key) /
        static_cast<double>(ds.domain_max);
    EXPECT_LE(width_frac, 0.015 + 1e-9);
    EXPECT_GE(width_frac, 0.005 - 1e-2);
  }
}

TEST(GeneratorTest, ScanLengthVariesAroundTypical) {
  const Dataset ds = GenerateDataset(UniformUnit(), {1000, uint64_t{1} << 40, 6});
  PhaseSpec spec;
  spec.mix.get = 0.0;
  spec.mix.scan = 1.0;
  spec.scan_length = 100;
  OperationGenerator gen(&ds, spec, 23);
  for (int i = 0; i < 500; ++i) {
    const Operation op = gen.Next();
    EXPECT_GE(op.scan_length, 50u);
    EXPECT_LE(op.scan_length, 150u);
  }
}

}  // namespace
}  // namespace lsbench
