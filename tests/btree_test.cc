#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "index/btree.h"
#include "util/random.h"

namespace lsbench {
namespace {

std::vector<KeyValue> MakeSortedPairs(size_t n, Key stride = 10) {
  std::vector<KeyValue> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<Key>(i) * stride + 5, static_cast<Value>(i));
  }
  return pairs;
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.Get(42).has_value());
  EXPECT_FALSE(tree.Erase(42));
  EXPECT_EQ(tree.Height(), 0);
  tree.CheckInvariants();
}

TEST(BTreeTest, SingleInsertGetErase) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(10, 100));
  EXPECT_EQ(tree.size(), 1u);
  ASSERT_TRUE(tree.Get(10).has_value());
  EXPECT_EQ(*tree.Get(10), 100u);
  EXPECT_FALSE(tree.Get(11).has_value());
  EXPECT_TRUE(tree.Erase(10));
  EXPECT_EQ(tree.size(), 0u);
  tree.CheckInvariants();
}

TEST(BTreeTest, InsertOverwrites) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(5, 1));
  EXPECT_FALSE(tree.Insert(5, 2));  // Overwrite returns false.
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Get(5), 2u);
}

TEST(BTreeTest, SequentialInsertsSplitCorrectly) {
  BTree tree(8);
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(tree.Insert(i, i * 2));
    if (i % 100 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_GT(tree.Height(), 1);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Get(i).has_value()) << i;
    EXPECT_EQ(*tree.Get(i), static_cast<Value>(i * 2));
  }
}

TEST(BTreeTest, ReverseInserts) {
  BTree tree(8);
  for (int i = 999; i >= 0; --i) tree.Insert(i, i);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(tree.Get(i).has_value());
}

TEST(BTreeTest, ScanReturnsSortedRange) {
  BTree tree(8);
  for (int i = 0; i < 500; ++i) tree.Insert(i * 10, i);
  std::vector<KeyValue> out;
  const size_t got = tree.Scan(95, 20, &out);
  EXPECT_EQ(got, 20u);
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out.front().first, 100u);  // First key >= 95.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST(BTreeTest, ScanPastEnd) {
  BTree tree;
  tree.Insert(1, 1);
  std::vector<KeyValue> out;
  EXPECT_EQ(tree.Scan(100, 10, &out), 0u);
  EXPECT_EQ(tree.Scan(0, 10, &out), 1u);
}

TEST(BTreeTest, ScanOnEmptyTree) {
  BTree tree;
  std::vector<KeyValue> out;
  EXPECT_EQ(tree.Scan(0, 10, &out), 0u);
}

TEST(BTreeTest, BulkLoadMatchesInserted) {
  BTree tree(16);
  const auto pairs = MakeSortedPairs(5000);
  tree.BulkLoad(pairs);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), pairs.size());
  for (const auto& [k, v] : pairs) {
    ASSERT_TRUE(tree.Get(k).has_value());
    EXPECT_EQ(*tree.Get(k), v);
  }
  // Keys between stored ones are absent.
  EXPECT_FALSE(tree.Get(6).has_value());
}

TEST(BTreeTest, BulkLoadEmptyAndSmall) {
  BTree tree;
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  tree.CheckInvariants();
  tree.BulkLoad({{1, 1}, {2, 2}});
  EXPECT_EQ(tree.size(), 2u);
  tree.CheckInvariants();
}

TEST(BTreeTest, BulkLoadThenInsertAndErase) {
  BTree tree(8);
  tree.BulkLoad(MakeSortedPairs(1000));
  for (int i = 0; i < 200; ++i) tree.Insert(i * 10 + 6, 999);
  tree.CheckInvariants();
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(tree.Erase(i * 10 + 5));
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 1000u);  // +200 inserts, -200 erases.
}

TEST(BTreeTest, EraseToEmptyAndReuse) {
  BTree tree(8);
  for (int i = 0; i < 300; ++i) tree.Insert(i, i);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(tree.Erase(i)) << i;
    if (i % 50 == 0) tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  tree.CheckInvariants();
  // The tree is fully usable after draining.
  EXPECT_TRUE(tree.Insert(7, 7));
  EXPECT_EQ(*tree.Get(7), 7u);
}

TEST(BTreeTest, EraseMissingKeyIsNoop) {
  BTree tree(8);
  tree.BulkLoad(MakeSortedPairs(100));
  const size_t before = tree.size();
  EXPECT_FALSE(tree.Erase(6));  // Between keys.
  EXPECT_FALSE(tree.Erase(100000));
  EXPECT_EQ(tree.size(), before);
  tree.CheckInvariants();
}

TEST(BTreeTest, MemoryGrowsWithSize) {
  BTree tree;
  const size_t empty_bytes = tree.MemoryBytes();
  tree.BulkLoad(MakeSortedPairs(10000));
  EXPECT_GT(tree.MemoryBytes(), empty_bytes + 10000 * 16);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BTree tree(64);
  tree.BulkLoad(MakeSortedPairs(100000));
  EXPECT_LE(tree.Height(), 4);
  EXPECT_GE(tree.Height(), 2);
}

/// Randomized differential test against std::map across fanouts.
class BTreeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeFuzzTest, MatchesStdMapUnderRandomOps) {
  const int fanout = GetParam();
  BTree tree(fanout);
  std::map<Key, Value> reference;
  Rng rng(1000 + fanout);
  const int ops = 20000;
  const Key key_space = 3000;  // Dense space forces collisions & deletes.

  for (int i = 0; i < ops; ++i) {
    const Key key = rng.NextBounded(key_space);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // Insert.
        const Value value = rng.Next();
        const bool fresh = reference.find(key) == reference.end();
        EXPECT_EQ(tree.Insert(key, value), fresh);
        reference[key] = value;
        break;
      }
      case 2: {  // Erase.
        const bool existed = reference.erase(key) > 0;
        EXPECT_EQ(tree.Erase(key), existed);
        break;
      }
      case 3: {  // Get.
        const auto it = reference.find(key);
        const auto got = tree.Get(key);
        if (it == reference.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
    if (i % 2500 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), reference.size());

  // Full scan equals the reference map contents.
  std::vector<KeyValue> all;
  tree.Scan(0, tree.size() + 10, &all);
  ASSERT_EQ(all.size(), reference.size());
  auto it = reference.begin();
  for (const auto& [k, v] : all) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFuzzTest,
                         ::testing::Values(4, 6, 8, 16, 64));

/// Deletion-heavy pattern to stress borrow/merge paths.
TEST(BTreeTest, AlternatingDeletePattern) {
  BTree tree(4);  // Minimal fanout: maximal rebalancing pressure.
  const int n = 2000;
  for (int i = 0; i < n; ++i) tree.Insert(i, i);
  // Delete every other key, then every fourth, ...
  for (int step = 2; step <= 16; step *= 2) {
    for (int i = 0; i < n; i += step) tree.Erase(i);
    tree.CheckInvariants();
  }
  // Survivors are exactly the keys not divisible by 2 (deleted at step 2).
  for (int i = 1; i < n; i += 2) {
    EXPECT_TRUE(tree.Get(i).has_value()) << i;
  }
}

TEST(BTreeTest, ExtremeKeyValues) {
  BTree tree(8);
  const Key max_key = ~Key{0};
  EXPECT_TRUE(tree.Insert(0, 1));
  EXPECT_TRUE(tree.Insert(max_key, 2));
  EXPECT_TRUE(tree.Insert(max_key - 1, 3));
  EXPECT_EQ(*tree.Get(0), 1u);
  EXPECT_EQ(*tree.Get(max_key), 2u);
  std::vector<KeyValue> out;
  EXPECT_EQ(tree.Scan(max_key, 5, &out), 1u);
  EXPECT_EQ(out[0].first, max_key);
  tree.CheckInvariants();
}

TEST(BTreeTest, RepeatedBulkLoadsReplaceContents) {
  BTree tree(8);
  tree.BulkLoad(MakeSortedPairs(500));
  tree.BulkLoad(MakeSortedPairs(100, /*stride=*/3));
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.Get(5).has_value());       // Stride-3 key (i=0 -> 5).
  EXPECT_FALSE(tree.Get(4995).has_value());   // Old stride-10 key is gone.
}

TEST(BTreeTest, InsertEraseChurnAtFixedSize) {
  // Sliding-window churn: insert at the front, erase at the back — stresses
  // the leftmost/rightmost rebalancing paths at a constant tree size.
  BTree tree(6);
  const int window = 500;
  for (int i = 0; i < window; ++i) tree.Insert(i, i);
  for (int i = window; i < 10000; ++i) {
    EXPECT_TRUE(tree.Insert(i, i));
    EXPECT_TRUE(tree.Erase(i - window));
    EXPECT_EQ(tree.size(), static_cast<size_t>(window));
  }
  tree.CheckInvariants();
  // Exactly the last `window` keys survive.
  std::vector<KeyValue> out;
  tree.Scan(0, window + 10, &out);
  ASSERT_EQ(out.size(), static_cast<size_t>(window));
  EXPECT_EQ(out.front().first, static_cast<Key>(10000 - window));
  EXPECT_EQ(out.back().first, 9999u);
}

TEST(BTreeTest, ScanAcrossManyLeaves) {
  BTree tree(4);
  for (int i = 0; i < 5000; ++i) tree.Insert(i, i);
  std::vector<KeyValue> out;
  EXPECT_EQ(tree.Scan(0, 5000, &out), 5000u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(out[i].first, static_cast<Key>(i));
  }
}

}  // namespace
}  // namespace lsbench
