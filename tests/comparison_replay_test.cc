#include <gtest/gtest.h>

#include "core/comparison.h"
#include "core/replay.h"
#include "data/dataset.h"
#include "sut/systems.h"
#include "workload/trace.h"

namespace lsbench {
namespace {

RunSpec SmallSpec() {
  RunSpec spec;
  spec.name = "cmp_test";
  DatasetOptions options;
  options.num_keys = 3000;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));
  PhaseSpec phase;
  phase.name = "p0";
  phase.mix = OperationMix::ReadMostly();
  phase.num_operations = 1500;
  spec.phases.push_back(phase);
  spec.interval_nanos = 50000000;
  spec.boxplot_sample_nanos = 5000000;
  return spec;
}

// ---------------------------------------------------------------------------
// Comparison harness
// ---------------------------------------------------------------------------

TEST(ComparisonTest, RunsAllSystemsAndRanks) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BTreeSystem btree;
  LearnedKvSystem learned;
  const Result<ComparisonReport> report = CompareSystems(
      SmallSpec(), {&btree, &learned}, &clock, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().rows.size(), 2u);
  ASSERT_EQ(report.value().results.size(), 2u);
  EXPECT_EQ(report.value().rows[0].sut_name, "btree_system");
  EXPECT_GT(report.value().rows[0].mean_throughput, 0.0);
  // Learned system trained; traditional did not.
  EXPECT_EQ(report.value().rows[0].retrain_events, 0u);
  // In simulation mode training takes zero virtual time but is recorded.
  EXPECT_EQ(report.value().results[1].train_events.size(), 1u);
  const size_t best = report.value().BestThroughputIndex();
  EXPECT_LT(best, 2u);
}

TEST(ComparisonTest, EmptySystemListRejected) {
  EXPECT_TRUE(CompareSystems(SmallSpec(), {}).status().IsInvalidArgument());
}

TEST(ComparisonTest, RenderContainsAllSystems) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BTreeSystem a;
  AdaptiveKvSystem b;
  const ComparisonReport report =
      CompareSystems(SmallSpec(), {&a, &b}, &clock, options).value();
  const std::string text = RenderComparison(report);
  EXPECT_NE(text.find("btree_system"), std::string::npos);
  EXPECT_NE(text.find("adaptive_system"), std::string::npos);
  EXPECT_NE(text.find("best mean throughput"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace record / serialize / replay
// ---------------------------------------------------------------------------

TEST(TraceTest, RecordCapturesMix) {
  DatasetOptions options;
  options.num_keys = 2000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  PhaseSpec phase;
  phase.mix.get = 0.5;
  phase.mix.insert = 0.5;
  const OperationTrace trace = RecordTrace(ds, phase, 4000, 7);
  EXPECT_EQ(trace.size(), 4000u);
  const auto hist = trace.TypeHistogram();
  EXPECT_NEAR(static_cast<double>(hist[static_cast<int>(OpType::kGet)]),
              2000.0, 200.0);
  EXPECT_NEAR(static_cast<double>(hist[static_cast<int>(OpType::kInsert)]),
              2000.0, 200.0);
}

TEST(TraceTest, CsvRoundTrip) {
  DatasetOptions options;
  options.num_keys = 500;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  PhaseSpec phase;
  phase.mix.get = 0.4;
  phase.mix.scan = 0.2;
  phase.mix.range_count = 0.4;
  const OperationTrace trace = RecordTrace(ds, phase, 300, 11);

  const std::string csv = trace.ToCsv();
  const Result<OperationTrace> parsed = OperationTrace::FromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const Operation& a = trace.operations()[i];
    const Operation& b = parsed.value().operations()[i];
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.range_end, b.range_end);
    EXPECT_EQ(a.scan_length, b.scan_length);
    EXPECT_EQ(a.value, b.value);
  }
}

TEST(TraceTest, FromCsvRejectsGarbage) {
  EXPECT_FALSE(OperationTrace::FromCsv("").ok());
  EXPECT_FALSE(OperationTrace::FromCsv("a,b,c\n1,2,3\n").ok());
  EXPECT_FALSE(OperationTrace::FromCsv(
                   "type,key,range_end,scan_length,value\nbogus,1,2,3,4\n")
                   .ok());
  EXPECT_FALSE(OperationTrace::FromCsv(
                   "type,key,range_end,scan_length,value\nget,xx,2,3,4\n")
                   .ok());
}

TEST(ReplayTest, SameTraceSameOutcomesAcrossSystems) {
  DatasetOptions options;
  options.num_keys = 3000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  PhaseSpec phase;
  phase.mix.get = 0.6;
  phase.mix.insert = 0.2;
  phase.mix.del = 0.2;
  const OperationTrace trace = RecordTrace(ds, phase, 3000, 13);

  std::vector<KeyValue> image;
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    image.emplace_back(ds.keys[i], static_cast<Value>(i));
  }

  auto replay = [&](SystemUnderTest* sut) {
    VirtualClock clock;
    ReplayOptions replay_options;
    replay_options.virtual_clock = &clock;
    return ReplayTrace(trace, image, sut, &clock, replay_options).value();
  };
  BTreeSystem btree;
  LearnedKvSystem learned;
  const RunResult a = replay(&btree);
  const RunResult b = replay(&learned);

  ASSERT_EQ(a.events.size(), trace.size());
  ASSERT_EQ(b.events.size(), trace.size());
  // Same logical outcome per operation regardless of the engine.
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(a.events[i].ok, b.events[i].ok) << "op " << i;
    EXPECT_EQ(a.events[i].rows, b.events[i].rows) << "op " << i;
  }
}

TEST(ReplayTest, EmptyTraceRejected) {
  BTreeSystem sut;
  EXPECT_TRUE(ReplayTrace(OperationTrace(), {}, &sut)
                  .status()
                  .IsInvalidArgument());
}

TEST(ReplayTest, MetricsPopulated) {
  DatasetOptions options;
  options.num_keys = 1000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  PhaseSpec phase;
  phase.mix.get = 1.0;
  const OperationTrace trace = RecordTrace(ds, phase, 500, 17);
  std::vector<KeyValue> image;
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    image.emplace_back(ds.keys[i], static_cast<Value>(i));
  }
  VirtualClock clock;
  ReplayOptions replay_options;
  replay_options.virtual_clock = &clock;
  BTreeSystem sut;
  const RunResult run =
      ReplayTrace(trace, image, &sut, &clock, replay_options).value();
  EXPECT_EQ(run.metrics.total_operations, 500u);
  EXPECT_GT(run.metrics.mean_throughput, 0.0);
  ASSERT_EQ(run.boundaries.size(), 1u);
  EXPECT_EQ(run.boundaries[0].operations, 500u);
}

}  // namespace
}  // namespace lsbench
