#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/dataset.h"
#include "learned/access_path.h"
#include "learned/cardinality.h"
#include "learned/drift_detector.h"
#include "learned/learned_sort.h"
#include "util/random.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Learned sort
// ---------------------------------------------------------------------------

struct SortCase {
  std::string label;
  std::function<std::vector<Key>(size_t)> make;
};

std::vector<Key> SampleKeys(const UnitDistribution& dist, size_t n,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<Key> keys(n);
  for (Key& k : keys) {
    k = static_cast<Key>(dist.Sample(&rng) * 9e18);
  }
  return keys;
}

class LearnedSortTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(LearnedSortTest, SortsCorrectly) {
  std::vector<Key> data = GetParam().make(50000);
  std::vector<Key> expected = data;
  std::sort(expected.begin(), expected.end());
  const LearnedSortStats stats = LearnedSort(&data);
  EXPECT_EQ(data, expected) << GetParam().label;
  EXPECT_EQ(stats.n, expected.size());
  EXPECT_GT(stats.num_buckets, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, LearnedSortTest,
    ::testing::Values(
        SortCase{"uniform",
                 [](size_t n) { return SampleKeys(UniformUnit(), n, 1); }},
        SortCase{"lognormal",
                 [](size_t n) {
                   return SampleKeys(LognormalUnit(0, 2), n, 2);
                 }},
        SortCase{"clustered",
                 [](size_t n) {
                   return SampleKeys(ClusteredUnit(20, 0.001, 3), n, 3);
                 }},
        SortCase{"with_duplicates",
                 [](size_t n) {
                   Rng rng(4);
                   std::vector<Key> keys(n);
                   for (Key& k : keys) k = rng.NextBounded(100);
                   return keys;
                 }},
        SortCase{"already_sorted",
                 [](size_t n) {
                   std::vector<Key> keys(n);
                   for (size_t i = 0; i < n; ++i) keys[i] = i * 17;
                   return keys;
                 }},
        SortCase{"reverse_sorted",
                 [](size_t n) {
                   std::vector<Key> keys(n);
                   for (size_t i = 0; i < n; ++i) {
                     keys[i] = (n - i) * 17;
                   }
                   return keys;
                 }}),
    [](const ::testing::TestParamInfo<SortCase>& param_info) {
      return param_info.param.label;
    });

TEST(LearnedSortEdgeTest, TinyInputsFallBack) {
  std::vector<Key> data = {5, 3, 1};
  const LearnedSortStats stats = LearnedSort(&data);
  EXPECT_EQ(data, (std::vector<Key>{1, 3, 5}));
  EXPECT_EQ(stats.num_buckets, 1u);
}

TEST(LearnedSortEdgeTest, EmptyInput) {
  std::vector<Key> data;
  LearnedSort(&data);
  EXPECT_TRUE(data.empty());
}

TEST(LearnedSortEdgeTest, AllEqualKeysSpillGracefully) {
  std::vector<Key> data(20000, 42);
  const LearnedSortStats stats = LearnedSort(&data);
  EXPECT_EQ(data.size(), 20000u);
  for (Key k : data) EXPECT_EQ(k, 42u);
  EXPECT_GT(stats.spill_count, 0u);  // Everything maps to one bucket.
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

std::vector<Key> SortedUniformKeys(size_t n, uint64_t seed) {
  const Dataset ds =
      GenerateDataset(UniformUnit(), {n, uint64_t{1} << 40, seed});
  return ds.keys;
}

uint64_t TrueCardinality(const std::vector<Key>& keys, Key lo, Key hi) {
  const auto begin = std::lower_bound(keys.begin(), keys.end(), lo);
  const auto end = std::upper_bound(keys.begin(), keys.end(), hi);
  return static_cast<uint64_t>(end - begin);
}

TEST(EquiDepthTest, AccurateOnUniformData) {
  const auto keys = SortedUniformKeys(50000, 7);
  EquiDepthHistogram hist(keys, 64);
  Rng rng(11);
  double max_q = 1.0;
  for (int i = 0; i < 200; ++i) {
    const Key lo = rng.Next() % (uint64_t{1} << 40);
    const Key hi = lo + (uint64_t{1} << 33);
    const double est = hist.EstimateRange(lo, hi);
    const double truth = static_cast<double>(TrueCardinality(keys, lo, hi));
    max_q = std::max(max_q, QError(est, truth));
  }
  EXPECT_LT(max_q, 2.0);
}

TEST(EquiDepthTest, EdgeRanges) {
  const std::vector<Key> keys = {10, 20, 30, 40, 50};
  EquiDepthHistogram hist(keys, 4);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(60, 100), 0.0);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(100, 50), 0.0);  // hi < lo.
  EXPECT_NEAR(hist.EstimateRange(0, 100), 5.0, 0.01);
}

TEST(EquiDepthTest, EmptyKeys) {
  EquiDepthHistogram hist({}, 8);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(0, 100), 0.0);
}

TEST(LearnedCardinalityTest, AccurateOnSmoothData) {
  const auto keys = SortedUniformKeys(50000, 13);
  LearnedCardinalityEstimator est(keys, {});
  Rng rng(17);
  double max_q = 1.0;
  for (int i = 0; i < 200; ++i) {
    const Key lo = rng.Next() % (uint64_t{1} << 40);
    const Key hi = lo + (uint64_t{1} << 34);
    const double e = est.EstimateRange(lo, hi);
    const double truth = static_cast<double>(TrueCardinality(keys, lo, hi));
    max_q = std::max(max_q, QError(e, truth));
  }
  EXPECT_LT(max_q, 2.0);
}

TEST(LearnedCardinalityTest, FeedbackImprovesSkewedRegionEstimates) {
  // Keys clustered in a narrow region that a coarse model underfits.
  const Dataset ds = GenerateDataset(ClusteredUnit(3, 0.001, 19),
                                     {30000, uint64_t{1} << 40, 21});
  LearnedCardinalityEstimator::Options options;
  options.num_knots = 8;  // Deliberately coarse.
  options.sample_size = 256;
  LearnedCardinalityEstimator est(ds.keys, options);

  // Pick a range with a large initial error.
  const Key lo = ds.keys[ds.keys.size() / 2];
  const Key hi = ds.keys[ds.keys.size() / 2 + 2000];
  const double truth =
      static_cast<double>(TrueCardinality(ds.keys, lo, hi));
  const double before = QError(est.EstimateRange(lo, hi), truth);
  for (int i = 0; i < 50; ++i) est.Feedback(lo, hi, truth);
  const double after = QError(est.EstimateRange(lo, hi), truth);
  EXPECT_LE(after, before);
  EXPECT_LT(after, 1.5);
  EXPECT_EQ(est.feedback_count(), 50u);
}

TEST(LearnedCardinalityTest, FeedbackKeepsModelMonotone) {
  const auto keys = SortedUniformKeys(10000, 23);
  LearnedCardinalityEstimator est(keys, {});
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const Key lo = rng.Next() % (uint64_t{1} << 40);
    const Key hi = lo + rng.Next() % (uint64_t{1} << 36);
    est.Feedback(lo, hi, static_cast<double>(rng.NextBounded(10000)));
  }
  // Estimates of nested ranges must be monotone in the range width.
  const Key base = uint64_t{1} << 38;
  double prev = -1.0;
  for (int w = 1; w <= 16; ++w) {
    const double e =
        est.EstimateRange(base, base + static_cast<Key>(w) * (uint64_t{1} << 34));
    EXPECT_GE(e, prev - 1e-9);
    prev = e;
  }
}

TEST(QErrorTest, Definition) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(20, 10), 2.0);
  EXPECT_DOUBLE_EQ(QError(10, 20), 2.0);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);  // Clamped.
}

// ---------------------------------------------------------------------------
// Drift detector
// ---------------------------------------------------------------------------

TEST(DriftDetectorTest, NoDriftOnStableDistribution) {
  DriftDetector detector;
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) detector.Observe(rng.NextDouble());
  detector.Freeze();
  for (int i = 0; i < 2000; ++i) detector.Observe(rng.NextDouble());
  EXPECT_LT(detector.CurrentDistance(), 0.1);
  EXPECT_FALSE(detector.DriftDetected());
}

TEST(DriftDetectorTest, DetectsDistributionShift) {
  DriftDetector detector;
  Rng rng(37);
  for (int i = 0; i < 3000; ++i) detector.Observe(rng.NextDouble());
  detector.Freeze();
  for (int i = 0; i < 2000; ++i) {
    detector.Observe(0.9 + 0.05 * rng.NextDouble());  // Shifted regime.
  }
  EXPECT_GT(detector.CurrentDistance(), 0.5);
  EXPECT_TRUE(detector.DriftDetected());
}

TEST(DriftDetectorTest, WarmupWindowReportsZero) {
  DriftDetector detector;
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) detector.Observe(rng.NextDouble());
  detector.Freeze();
  for (int i = 0; i < 10; ++i) detector.Observe(5.0);  // Below min_window.
  EXPECT_EQ(detector.CurrentDistance(), 0.0);
  EXPECT_FALSE(detector.DriftDetected());
}

TEST(DriftDetectorTest, RebaseAdoptsNewDistribution) {
  DriftDetector detector;
  Rng rng(43);
  for (int i = 0; i < 2000; ++i) detector.Observe(rng.NextDouble());
  detector.Freeze();
  for (int i = 0; i < 1024; ++i) {
    detector.Observe(0.9 + 0.05 * rng.NextDouble());
  }
  ASSERT_TRUE(detector.DriftDetected());
  detector.Rebase();
  // The shifted regime is now the reference: feeding more of it is calm.
  for (int i = 0; i < 1024; ++i) {
    detector.Observe(0.9 + 0.05 * rng.NextDouble());
  }
  EXPECT_FALSE(detector.DriftDetected());
}

// ---------------------------------------------------------------------------
// Access-path cost models
// ---------------------------------------------------------------------------

TEST(AccessPathTest, StaticModelPrefersProbeForSelectiveQueries) {
  StaticCostModel model;
  EXPECT_EQ(model.Choose(/*estimated_rows=*/10, /*table_rows=*/100000),
            AccessPath::kIndexProbe);
  EXPECT_EQ(model.Choose(/*estimated_rows=*/90000, /*table_rows=*/100000),
            AccessPath::kFullScan);
}

TEST(AccessPathTest, CrossoverNearCostRatio) {
  // probe ~ rows * 4, scan ~ n * 1: crossover near n/4.
  StaticCostModel model;
  const double n = 100000;
  EXPECT_EQ(model.Choose(n / 4 - 100, n), AccessPath::kIndexProbe);
  EXPECT_EQ(model.Choose(n / 4 + 100, n), AccessPath::kFullScan);
}

TEST(AccessPathTest, OnlineModelLearnsFromFeedback) {
  OnlineCostModel model;
  const double table = 100000;
  // Observe that probes are actually much cheaper than assumed (factor 1
  // instead of 4): repeated feedback should move the crossover.
  for (int i = 0; i < 200; ++i) {
    model.Feedback(AccessPath::kIndexProbe, 1000, table,
                   /*observed_cost=*/1000.0);
  }
  EXPECT_LT(model.probe_per_row(), 1.5);
  // Now a 40%-selectivity query should pick the probe (scan still costs n).
  EXPECT_EQ(model.Choose(0.4 * table, table), AccessPath::kIndexProbe);
}

TEST(AccessPathTest, OnlineModelScanFeedback) {
  OnlineCostModel model;
  for (int i = 0; i < 200; ++i) {
    model.Feedback(AccessPath::kFullScan, 0, 1000, /*observed_cost=*/5000.0);
  }
  EXPECT_NEAR(model.scan_per_row(), 5.0, 0.5);
  EXPECT_EQ(model.feedback_count(), 200u);
}

TEST(AccessPathTest, Names) {
  EXPECT_EQ(AccessPathToString(AccessPath::kIndexProbe), "index_probe");
  EXPECT_EQ(AccessPathToString(AccessPath::kFullScan), "full_scan");
  EXPECT_EQ(StaticCostModel().name(), "static_cost_model");
  EXPECT_EQ(OnlineCostModel().name(), "online_cost_model");
}

}  // namespace
}  // namespace lsbench
