#include "sut/fault_injection.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/clock.h"

namespace lsbench {
namespace {

/// Minimal recording SUT: every call is counted, Execute always succeeds.
class RecordingSut : public SystemUnderTest {
 public:
  std::string name() const override { return "recording_sut"; }

  Status Load(const std::vector<KeyValue>&) override {
    ++loads;
    return Status::OK();
  }

  TrainReport Train() override {
    ++trains;
    TrainReport report;
    report.trained = true;
    report.work_items = 7;
    return report;
  }

  OpResult Execute(const Operation&) override {
    ++executes;
    OpResult result;
    result.ok = true;
    return result;
  }

  void OnPhaseStart(int phase_index, bool) override {
    last_phase = phase_index;
  }

  SutStats GetStats() const override {
    SutStats stats;
    stats.memory_bytes = 123;
    return stats;
  }

  int loads = 0;
  int trains = 0;
  int executes = 0;
  int last_phase = -1;
};

TEST(FaultPlanTest, EmptyAndWindowLookup) {
  FaultPlan plan;
  EXPECT_TRUE(plan.Empty());
  EXPECT_EQ(plan.WindowForPhase(0), nullptr);

  FaultWindow wildcard;
  wildcard.phase = -1;
  wildcard.execute_fail_rate = 0.1;
  FaultWindow exact;
  exact.phase = 2;
  exact.execute_fail_rate = 0.9;
  plan.windows = {wildcard, exact};
  EXPECT_FALSE(plan.Empty());

  // Exact match beats the wildcard; other phases fall back to it.
  ASSERT_NE(plan.WindowForPhase(2), nullptr);
  EXPECT_EQ(plan.WindowForPhase(2)->execute_fail_rate, 0.9);
  ASSERT_NE(plan.WindowForPhase(0), nullptr);
  EXPECT_EQ(plan.WindowForPhase(0)->execute_fail_rate, 0.1);

  // Among equally specific windows the last one wins.
  FaultWindow exact2;
  exact2.phase = 2;
  exact2.execute_fail_rate = 0.5;
  plan.windows.push_back(exact2);
  EXPECT_EQ(plan.WindowForPhase(2)->execute_fail_rate, 0.5);
}

TEST(FaultPlanTest, LoadFailuresAloneMakePlanNonEmpty) {
  FaultPlan plan;
  plan.load_failures = 1;
  EXPECT_FALSE(plan.Empty());
}

TEST(FaultInjectionTest, TransparentWithoutFaults) {
  RecordingSut inner;
  VirtualClock clock;
  FaultInjectingSut sut(&inner, FaultPlan(), &clock, &clock);

  EXPECT_EQ(sut.name(), "recording_sut");
  EXPECT_TRUE(sut.Load({}).ok());
  EXPECT_TRUE(sut.Train().trained);
  Operation op;
  const OpResult r = sut.Execute(op);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(inner.loads, 1);
  EXPECT_EQ(inner.trains, 1);
  EXPECT_EQ(inner.executes, 1);
  EXPECT_EQ(sut.GetStats().memory_bytes, 123u);
  EXPECT_EQ(clock.NowNanos(), 0);  // No synthetic latency.
}

TEST(FaultInjectionTest, CertainExecuteFailureNeverReachesInner) {
  RecordingSut inner;
  VirtualClock clock;
  FaultPlan plan;
  FaultWindow w;
  w.execute_fail_rate = 1.0;
  w.execute_fail_code = StatusCode::kResourceExhausted;
  plan.windows = {w};
  FaultInjectingSut sut(&inner, plan, &clock, &clock);

  Operation op;
  for (int i = 0; i < 50; ++i) {
    const OpResult r = sut.Execute(op);
    EXPECT_FALSE(r.status.ok());
    EXPECT_TRUE(r.status.IsResourceExhausted());
  }
  EXPECT_EQ(inner.executes, 0);
  EXPECT_EQ(sut.fault_stats().injected_failures, 50u);
}

TEST(FaultInjectionTest, FailureRateRoughlyMatchesProbability) {
  RecordingSut inner;
  VirtualClock clock;
  FaultPlan plan;
  FaultWindow w;
  w.execute_fail_rate = 0.2;
  plan.windows = {w};
  FaultInjectingSut sut(&inner, plan, &clock, &clock);

  Operation op;
  const int kOps = 10000;
  int failures = 0;
  for (int i = 0; i < kOps; ++i) {
    if (!sut.Execute(op).status.ok()) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / kOps, 0.2, 0.02);
  EXPECT_EQ(sut.fault_stats().injected_failures,
            static_cast<uint64_t>(failures));
}

TEST(FaultInjectionTest, WindowsAreScopedToPhases) {
  RecordingSut inner;
  VirtualClock clock;
  FaultPlan plan;
  FaultWindow w;
  w.phase = 1;
  w.execute_fail_rate = 1.0;
  plan.windows = {w};
  FaultInjectingSut sut(&inner, plan, &clock, &clock);

  Operation op;
  sut.OnPhaseStart(0, false);
  EXPECT_TRUE(sut.Execute(op).status.ok());
  sut.OnPhaseStart(1, false);
  EXPECT_FALSE(sut.Execute(op).status.ok());
  sut.OnPhaseStart(2, false);
  EXPECT_TRUE(sut.Execute(op).status.ok());
  EXPECT_EQ(inner.last_phase, 2);  // Phase notifications pass through.
}

TEST(FaultInjectionTest, LatencySpikesAndStallsAdvanceVirtualClock) {
  RecordingSut inner;
  VirtualClock clock;
  FaultPlan plan;
  FaultWindow w;
  w.latency_spike_rate = 1.0;
  w.latency_spike_nanos = 5000;
  plan.windows = {w};
  FaultInjectingSut sut(&inner, plan, &clock, &clock);

  Operation op;
  EXPECT_TRUE(sut.Execute(op).status.ok());
  EXPECT_EQ(clock.NowNanos(), 5000);
  EXPECT_EQ(sut.fault_stats().injected_spikes, 1u);

  // A stall takes priority over a spike when both fire.
  FaultPlan stall_plan;
  FaultWindow sw;
  sw.latency_spike_rate = 1.0;
  sw.latency_spike_nanos = 5000;
  sw.stall_rate = 1.0;
  sw.stall_nanos = 1000000;
  stall_plan.windows = {sw};
  VirtualClock clock2;
  FaultInjectingSut stalling(&inner, stall_plan, &clock2, &clock2);
  EXPECT_TRUE(stalling.Execute(op).status.ok());
  EXPECT_EQ(clock2.NowNanos(), 1000000);
  EXPECT_EQ(stalling.fault_stats().injected_stalls, 1u);
  EXPECT_EQ(stalling.fault_stats().injected_spikes, 0u);
}

TEST(FaultInjectionTest, LoadFailuresAreBounded) {
  RecordingSut inner;
  VirtualClock clock;
  FaultPlan plan;
  plan.load_failures = 2;
  FaultInjectingSut sut(&inner, plan, &clock, &clock);

  EXPECT_TRUE(sut.Load({}).IsIoError());
  EXPECT_TRUE(sut.Load({}).IsIoError());
  EXPECT_TRUE(sut.Load({}).ok());
  EXPECT_EQ(inner.loads, 1);
  EXPECT_EQ(sut.fault_stats().failed_loads, 2u);
}

TEST(FaultInjectionTest, TrainHangAndFailure) {
  RecordingSut inner;
  VirtualClock clock;
  FaultPlan plan;
  FaultWindow w;
  w.train_hang_nanos = 250000000;  // 250 ms hang.
  w.fail_train = true;
  plan.windows = {w};
  FaultInjectingSut sut(&inner, plan, &clock, &clock);

  const TrainReport report = sut.Train();
  EXPECT_FALSE(report.trained);
  EXPECT_TRUE(report.status.IsUnavailable());
  EXPECT_EQ(clock.NowNanos(), 250000000);
  EXPECT_EQ(inner.trains, 0);
  EXPECT_EQ(sut.fault_stats().hung_trains, 1u);
  EXPECT_EQ(sut.fault_stats().failed_trains, 1u);
}

/// Replays the injector's Execute decisions as a bit vector.
std::vector<bool> InjectionTrace(uint64_t seed, int phases, int ops) {
  RecordingSut inner;
  VirtualClock clock;
  FaultPlan plan;
  plan.seed = seed;
  FaultWindow w;
  w.execute_fail_rate = 0.1;
  w.latency_spike_rate = 0.05;
  w.latency_spike_nanos = 1000;
  plan.windows = {w};
  FaultInjectingSut sut(&inner, plan, &clock, &clock);
  std::vector<bool> trace;
  Operation op;
  for (int p = 0; p < phases; ++p) {
    sut.OnPhaseStart(p, false);
    for (int i = 0; i < ops; ++i) {
      trace.push_back(sut.Execute(op).status.ok());
    }
  }
  return trace;
}

TEST(FaultInjectionTest, DecisionsAreSeedDeterministic) {
  const auto a = InjectionTrace(99, 3, 500);
  const auto b = InjectionTrace(99, 3, 500);
  EXPECT_EQ(a, b);
  // A different seed produces a different trace (overwhelmingly likely
  // given 1500 draws at 10%).
  EXPECT_NE(a, InjectionTrace(100, 3, 500));
}

TEST(FaultInjectionTest, PhaseStreamsAreIndependentOfDrawCounts) {
  // The injection decisions inside phase 1 must not depend on how many ops
  // phase 0 executed: per-phase RNG forks.
  auto phase1_trace = [](int phase0_ops) {
    RecordingSut inner;
    VirtualClock clock;
    FaultPlan plan;
    FaultWindow w;
    w.execute_fail_rate = 0.2;
    plan.windows = {w};
    FaultInjectingSut sut(&inner, plan, &clock, &clock);
    Operation op;
    sut.OnPhaseStart(0, false);
    for (int i = 0; i < phase0_ops; ++i) (void)sut.Execute(op);
    sut.OnPhaseStart(1, false);
    std::vector<bool> trace;
    for (int i = 0; i < 200; ++i) {
      trace.push_back(sut.Execute(op).status.ok());
    }
    return trace;
  };
  EXPECT_EQ(phase1_trace(10), phase1_trace(1000));
}

}  // namespace
}  // namespace lsbench
