// Differential testing of every SUT against a std::map oracle: seeded
// random operation sequences (insert / lookup / scan / delete / update /
// range-count) must produce identical observable outcomes (ok, rows) on the
// real systems and on the trivially-correct reference. On divergence the
// test reports the seed and a greedily minimized reproducer trace, so a
// failure is directly actionable without re-running the fuzzer.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sut/concurrent_kv.h"
#include "sut/systems.h"
#include "util/env.h"
#include "util/random.h"

namespace lsbench {
namespace {

std::unique_ptr<SystemUnderTest> MakeSut(const std::string& kind) {
  if (kind == "btree") return std::make_unique<BTreeSystem>();
  if (kind == "rmi") {
    LearnedSystemOptions options;
    // Delta-threshold retraining fires repeatedly under a write-heavy
    // differential sequence — the interesting path to cross-check.
    options.retrain_policy = RetrainPolicy::kDeltaThreshold;
    options.delta_threshold_fraction = 0.05;
    return std::make_unique<LearnedKvSystem>(options);
  }
  if (kind == "pgm") {
    LearnedSystemOptions options;
    options.index_kind = LearnedSystemOptions::IndexKind::kPgm;
    options.retrain_policy = RetrainPolicy::kDeltaThreshold;
    options.delta_threshold_fraction = 0.05;
    return std::make_unique<LearnedKvSystem>(options);
  }
  if (kind == "adaptive") return std::make_unique<AdaptiveKvSystem>();
  if (kind == "partitioned") return std::make_unique<PartitionedKvSystem>(8);
  return nullptr;
}

/// The trivially-correct reference: a std::map mirroring the SUT contract
/// (upsert inserts, scan = up-to-limit entries with key >= from, range
/// count over the inclusive interval).
class MapOracle {
 public:
  explicit MapOracle(const std::vector<KeyValue>& initial) {
    for (const auto& [k, v] : initial) data_.emplace(k, v);
  }

  OpResult Execute(const Operation& op) {
    OpResult result;
    switch (op.type) {
      case OpType::kGet: {
        result.ok = data_.count(op.key) > 0;
        result.rows = result.ok ? 1 : 0;
        break;
      }
      case OpType::kScan: {
        uint64_t rows = 0;
        for (auto it = data_.lower_bound(op.key);
             it != data_.end() && rows < op.scan_length; ++it) {
          ++rows;
        }
        result.ok = true;
        result.rows = rows;
        break;
      }
      case OpType::kInsert:
      case OpType::kUpdate: {
        data_[op.key] = op.value;
        result.ok = true;
        result.rows = 1;
        break;
      }
      case OpType::kDelete: {
        result.ok = data_.erase(op.key) > 0;
        result.rows = result.ok ? 1 : 0;
        break;
      }
      case OpType::kRangeCount: {
        uint64_t rows = 0;
        for (auto it = data_.lower_bound(op.key);
             it != data_.end() && it->first <= op.range_end; ++it) {
          ++rows;
        }
        result.ok = true;
        result.rows = rows;
        break;
      }
      case OpType::kBatchGet: {
        uint64_t rows = 0;
        for (uint32_t i = 0; i < op.batch_size; ++i) {
          if (data_.count(op.batch_keys[i]) > 0) ++rows;
        }
        result.ok = true;
        result.rows = rows;
        break;
      }
      case OpType::kBatchPut: {
        for (uint32_t i = 0; i < op.batch_size; ++i) {
          data_[op.batch_keys[i]] = op.batch_values[i];
        }
        result.ok = true;
        result.rows = op.batch_size;
        break;
      }
    }
    return result;
  }

 private:
  std::map<Key, Value> data_;
};

/// Small key domain so inserts collide with loaded keys and deletes hit.
constexpr uint64_t kKeyDomain = 4096;

std::vector<KeyValue> MakeInitialPairs(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::set<Key> keys;
  while (keys.size() < count) keys.insert(rng.NextBounded(kKeyDomain));
  std::vector<KeyValue> pairs;
  pairs.reserve(keys.size());
  Value v = 0;
  for (Key k : keys) pairs.emplace_back(k, v++);
  return pairs;
}

std::vector<Operation> MakeOps(uint64_t seed, size_t count) {
  Rng rng(seed ^ 0x09051eedULL);
  std::vector<Operation> ops;
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Operation op;
    op.key = rng.NextBounded(kKeyDomain);
    const uint64_t dice = rng.NextBounded(100);
    if (dice < 35) {
      op.type = OpType::kGet;
    } else if (dice < 60) {
      op.type = OpType::kInsert;
      op.value = static_cast<Value>(rng.Next());
    } else if (dice < 75) {
      op.type = OpType::kDelete;
    } else if (dice < 85) {
      op.type = OpType::kScan;
      op.scan_length = static_cast<uint32_t>(1 + rng.NextBounded(16));
    } else if (dice < 92) {
      op.type = OpType::kUpdate;
      op.value = static_cast<Value>(rng.Next());
    } else {
      op.type = OpType::kRangeCount;
      op.range_end = op.key + rng.NextBounded(kKeyDomain / 8);
    }
    ops.push_back(op);
  }
  return ops;
}

std::string FormatOp(const Operation& op) {
  std::ostringstream os;
  os << OpTypeToString(op.type) << " key=" << op.key;
  if (op.type == OpType::kScan) os << " len=" << op.scan_length;
  if (op.type == OpType::kRangeCount) os << " end=" << op.range_end;
  if (op.type == OpType::kInsert || op.type == OpType::kUpdate) {
    os << " value=" << op.value;
  }
  return os.str();
}

std::string FormatOps(const std::vector<Operation>& ops) {
  std::ostringstream os;
  for (size_t i = 0; i < ops.size(); ++i) {
    os << "  [" << i << "] " << FormatOp(ops[i]) << "\n";
  }
  return os.str();
}

/// Replays `ops` on a fresh SUT and the oracle; returns the index of the
/// first diverging operation (-1 if none). `detail`, when non-null, gets a
/// human-readable description of the mismatch.
int FirstDivergence(const std::string& kind,
                    const std::vector<KeyValue>& initial,
                    const std::vector<Operation>& ops, std::string* detail) {
  const std::unique_ptr<SystemUnderTest> sut = MakeSut(kind);
  if (sut == nullptr) return -2;
  if (!sut->Load(initial).ok()) return -3;
  const TrainReport train = sut->Train();
  (void)train;
  MapOracle oracle(initial);
  for (size_t i = 0; i < ops.size(); ++i) {
    const OpResult got = sut->Execute(ops[i]);
    const OpResult want = oracle.Execute(ops[i]);
    if (got.ok != want.ok || got.rows != want.rows) {
      if (detail != nullptr) {
        std::ostringstream os;
        os << FormatOp(ops[i]) << ": sut(ok=" << got.ok
           << ", rows=" << got.rows << ") vs oracle(ok=" << want.ok
           << ", rows=" << want.rows << ")";
        *detail = os.str();
      }
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Greedy delta-debugging: drop every operation that is not needed to keep
/// the sequence diverging. Only runs on failure, so the quadratic replay
/// cost never taxes a passing suite.
std::vector<Operation> MinimizeOps(const std::string& kind,
                                   const std::vector<KeyValue>& initial,
                                   std::vector<Operation> ops,
                                   int first_divergence) {
  ops.resize(static_cast<size_t>(first_divergence) + 1);
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; ops.size() > 1 && i < ops.size() - 1;) {
      std::vector<Operation> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (FirstDivergence(kind, initial, candidate, nullptr) >= 0) {
        ops = std::move(candidate);
        progress = true;
      } else {
        ++i;
      }
    }
  }
  return ops;
}

class DifferentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DifferentialTest, MatchesStdMapOracle) {
  const std::string kind = GetParam();
  const int rounds = EnvFlagEnabled("LSBENCH_QUICK") ? 4 : 10;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = 0x5eed0000ULL + static_cast<uint64_t>(round);
    const std::vector<KeyValue> initial = MakeInitialPairs(seed, 512);
    const std::vector<Operation> ops = MakeOps(seed, 800);
    std::string detail;
    const int divergence = FirstDivergence(kind, initial, ops, &detail);
    ASSERT_GE(divergence, -1) << "SUT setup failed for '" << kind << "'";
    if (divergence >= 0) {
      const std::vector<Operation> minimal =
          MinimizeOps(kind, initial, ops, divergence);
      FAIL() << "SUT '" << kind << "' diverged from the std::map oracle at "
             << "op " << divergence << " (seed=" << seed << "): " << detail
             << "\nminimal reproducer (" << minimal.size()
             << " ops, rebuild initial pairs from the seed):\n"
             << FormatOps(minimal);
    }
  }
}

// Batch ops are one request unit but per-element results must agree with
// what a scalar twin produces element-by-element: each native ExecuteBatch
// override (direct B-tree / learned-index calls, partition-grouped fan-out)
// is differentially pinned against Execute(ScalarViewOf(op, i)) on a second
// instance loaded identically. Duplicate keys inside a put batch apply in
// element order on both sides.
TEST_P(DifferentialTest, BatchMatchesScalarElementwise) {
  const std::string kind = GetParam();
  const uint64_t seed = 0xba7c0001ULL;
  const std::vector<KeyValue> initial = MakeInitialPairs(seed, 512);
  const std::unique_ptr<SystemUnderTest> batch_sut = MakeSut(kind);
  const std::unique_ptr<SystemUnderTest> scalar_sut = MakeSut(kind);
  ASSERT_NE(batch_sut, nullptr);
  ASSERT_TRUE(batch_sut->Load(initial).ok());
  ASSERT_TRUE(scalar_sut->Load(initial).ok());
  (void)batch_sut->Train();
  (void)scalar_sut->Train();

  Rng rng(seed);
  std::vector<Key> keys;
  std::vector<Value> values;
  std::vector<OpResult> results;
  for (int round = 0; round < 64; ++round) {
    const bool put = round % 2 == 1;
    const uint32_t n = static_cast<uint32_t>(1 + rng.NextBounded(64));
    keys.resize(n);
    values.resize(n);
    results.assign(n, OpResult());
    for (uint32_t i = 0; i < n; ++i) {
      keys[i] = rng.NextBounded(kKeyDomain);
      values[i] = static_cast<Value>(rng.Next());
    }

    Operation op;
    op.type = put ? OpType::kBatchPut : OpType::kBatchGet;
    op.key = keys[0];
    op.batch_keys = keys.data();
    op.batch_values = put ? values.data() : nullptr;
    op.batch_size = n;

    batch_sut->ExecuteBatch(op, results.data());
    for (uint32_t i = 0; i < n; ++i) {
      const OpResult want = scalar_sut->Execute(ScalarViewOf(op, i));
      ASSERT_EQ(results[i].ok, want.ok)
          << kind << " round " << round << " element " << i << " ("
          << (put ? "batch_put" : "batch_get") << " key=" << keys[i] << ")";
      ASSERT_EQ(results[i].rows, want.rows)
          << kind << " round " << round << " element " << i;
      ASSERT_TRUE(results[i].status.ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSuts, DifferentialTest,
                         ::testing::Values("btree", "rmi", "pgm", "adaptive",
                                           "partitioned"));

}  // namespace
}  // namespace lsbench
