// DriftMeter and DriftSynthesizer: the quantified "changing workloads" axis.
// The meter's metric properties (identity, symmetry, bounds, monotonicity)
// are what make a declared trajectory meaningful; the synthesizer tests pin
// the paper-facing contract that a requested trajectory is hit within
// tolerance, deterministically, with infeasible and stagnating searches
// failing loudly instead of spinning.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/dataset.h"
#include "stats/drift.h"
#include "workload/drift_synthesizer.h"
#include "workload/spec.h"

namespace lsbench {
namespace {

Dataset MakeDataset(size_t num_keys = 20000, uint64_t seed = 7) {
  DatasetOptions options;
  options.num_keys = num_keys;
  options.seed = seed;
  return GenerateDataset(UniformUnit(), options);
}

PhaseSpec HotspotPhase(double hot_start, double get = 0.8,
                       double update = 0.2) {
  PhaseSpec phase;
  phase.name = "p";
  phase.mix.get = get;
  phase.mix.update = update;
  phase.access = AccessPattern::kHotSpot;
  phase.access_param = 0.1;
  phase.access_param2 = hot_start;
  phase.num_operations = 4096;
  return phase;
}

// ---------------------------------------------------------------------------
// DriftMeter metric properties
// ---------------------------------------------------------------------------

TEST(DriftMeterTest, IdenticalPhasesMeasureExactlyZero) {
  const Dataset dataset = MakeDataset();
  const DriftMeter meter;
  const PhaseDistributionSample s =
      meter.SamplePhase(dataset, HotspotPhase(0.0));
  const DriftComponents d = meter.Measure(s, s);
  EXPECT_DOUBLE_EQ(d.factor, 0.0);
  EXPECT_DOUBLE_EQ(d.key_ks, 0.0);
  EXPECT_DOUBLE_EQ(d.op_mix_tv, 0.0);
  EXPECT_DOUBLE_EQ(d.key_overlap, 1.0);
}

TEST(DriftMeterTest, TwoSamplesOfTheSamePhaseSpecAreIdentical) {
  // SamplePhase is seeded by the options, not by any global state: the same
  // (dataset, phase) pair distills to the same sample, so a repeated phase
  // in a spec (repeating_session.lsb's A, A prefix) measures drift 0.
  const Dataset dataset = MakeDataset();
  const DriftMeter meter;
  const PhaseDistributionSample a =
      meter.SamplePhase(dataset, HotspotPhase(0.3));
  const PhaseDistributionSample b =
      meter.SamplePhase(dataset, HotspotPhase(0.3));
  EXPECT_EQ(a.normalized_keys, b.normalized_keys);
  EXPECT_DOUBLE_EQ(meter.Measure(a, b).factor, 0.0);
}

TEST(DriftMeterTest, MeasureIsSymmetric) {
  const Dataset dataset = MakeDataset();
  const DriftMeter meter;
  const PhaseDistributionSample a =
      meter.SamplePhase(dataset, HotspotPhase(0.0));
  const PhaseDistributionSample b =
      meter.SamplePhase(dataset, HotspotPhase(0.5, /*get=*/0.5, 0.5));
  const DriftComponents ab = meter.Measure(a, b);
  const DriftComponents ba = meter.Measure(b, a);
  EXPECT_DOUBLE_EQ(ab.factor, ba.factor);
  EXPECT_DOUBLE_EQ(ab.key_ks, ba.key_ks);
  EXPECT_DOUBLE_EQ(ab.key_mmd, ba.key_mmd);
  EXPECT_DOUBLE_EQ(ab.key_overlap, ba.key_overlap);
  EXPECT_DOUBLE_EQ(ab.op_mix_tv, ba.op_mix_tv);
}

TEST(DriftMeterTest, ComponentsAndFactorStayInBounds) {
  const Dataset dataset = MakeDataset();
  const DriftMeter meter;
  const PhaseDistributionSample base =
      meter.SamplePhase(dataset, HotspotPhase(0.0));
  for (const double start : {0.0, 0.05, 0.2, 0.5, 0.9}) {
    PhaseSpec other = HotspotPhase(start, /*get=*/0.4, /*update=*/0.3);
    other.mix.insert = 0.3;
    const DriftComponents d =
        meter.Measure(base, meter.SamplePhase(dataset, other));
    EXPECT_GE(d.factor, 0.0) << "start=" << start;
    EXPECT_LE(d.factor, 1.0) << "start=" << start;
    EXPECT_GE(d.key_ks, 0.0);
    EXPECT_LE(d.key_ks, 1.0);
    EXPECT_GE(d.key_mmd, 0.0);
    EXPECT_LE(d.key_mmd, 1.0);
    EXPECT_GE(d.key_overlap, 0.0);
    EXPECT_LE(d.key_overlap, 1.0);
    EXPECT_GE(d.op_mix_tv, 0.0);
    EXPECT_LE(d.op_mix_tv, 1.0);
  }
}

TEST(DriftMeterTest, FartherHotspotMoveMeasuresMoreDrift) {
  // Moving a 10%-wide hot region by 5% overlaps half of it; moving it by
  // 40% makes the hot sets disjoint. The factor must order accordingly.
  const Dataset dataset = MakeDataset();
  const DriftMeter meter;
  const PhaseDistributionSample base =
      meter.SamplePhase(dataset, HotspotPhase(0.0));
  const double near =
      meter.Measure(base, meter.SamplePhase(dataset, HotspotPhase(0.05)))
          .factor;
  const double far =
      meter.Measure(base, meter.SamplePhase(dataset, HotspotPhase(0.4)))
          .factor;
  EXPECT_GT(near, 0.0);
  EXPECT_LT(near, far);
}

TEST(DriftMeterTest, OpMixShiftAloneIsVisible) {
  // Same access distribution, different mix: the op-mix component must
  // carry the drift even though the touched-key distribution barely moves.
  const Dataset dataset = MakeDataset();
  const DriftMeter meter;
  const DriftComponents d = meter.MeasurePhases(
      dataset, HotspotPhase(0.0, /*get=*/0.9, /*update=*/0.1), dataset,
      HotspotPhase(0.0, /*get=*/0.3, /*update=*/0.7));
  EXPECT_NEAR(d.op_mix_tv, 0.6, 0.05);
  EXPECT_GT(d.factor, 0.1);
  EXPECT_LT(d.key_ks, 0.2);
}

TEST(DriftMeterTest, MeasurementIsBitDeterministic) {
  const Dataset dataset = MakeDataset();
  const DriftMeter meter;
  const DriftComponents a = meter.MeasurePhases(
      dataset, HotspotPhase(0.0), dataset, HotspotPhase(0.35));
  const DriftComponents b = meter.MeasurePhases(
      dataset, HotspotPhase(0.0), dataset, HotspotPhase(0.35));
  EXPECT_EQ(a.factor, b.factor);
  EXPECT_EQ(a.key_ks, b.key_ks);
  EXPECT_EQ(a.key_mmd, b.key_mmd);
  EXPECT_EQ(a.key_overlap, b.key_overlap);
  EXPECT_EQ(a.op_mix_tv, b.op_mix_tv);
}

// ---------------------------------------------------------------------------
// DriftSynthesizer
// ---------------------------------------------------------------------------

TEST(DriftSynthesizerTest, HitsAThreePointTrajectoryWithinTolerance) {
  const Dataset dataset = MakeDataset();
  const DriftSynthesizer synth;
  const std::vector<double> targets = {0.0, 0.3, 0.6};
  const Result<SynthesizedTrajectory> fitted =
      synth.Synthesize(dataset, HotspotPhase(0.0), targets);
  ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
  const SynthesizedTrajectory& t = fitted.value();
  ASSERT_EQ(t.phases.size(), targets.size() + 1);
  ASSERT_EQ(t.achieved.size(), targets.size());
  const double tolerance = synth.options().tolerance;
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(t.achieved[i].factor, targets[i], tolerance)
        << "transition " << i;
  }
  // A 0-target is realized by the identity dial, not a lucky search.
  EXPECT_DOUBLE_EQ(t.dials[0], 0.0);

  // Fitting is honest: re-measuring the emitted phases with an independent
  // meter (same options) reproduces the achieved factors.
  const DriftMeter meter(synth.options().meter);
  for (size_t i = 0; i < targets.size(); ++i) {
    const DriftComponents check = meter.MeasurePhases(
        dataset, t.phases[i], dataset, t.phases[i + 1]);
    EXPECT_DOUBLE_EQ(check.factor, t.achieved[i].factor) << "transition " << i;
  }
}

TEST(DriftSynthesizerTest, SynthesisIsDeterministic) {
  const Dataset dataset = MakeDataset();
  const DriftSynthesizer synth;
  const std::vector<double> targets = {0.2, 0.5};
  const Result<SynthesizedTrajectory> a =
      synth.Synthesize(dataset, HotspotPhase(0.0), targets);
  const Result<SynthesizedTrajectory> b =
      synth.Synthesize(dataset, HotspotPhase(0.0), targets);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.value().dials, b.value().dials);
  ASSERT_EQ(a.value().achieved.size(), b.value().achieved.size());
  for (size_t i = 0; i < a.value().achieved.size(); ++i) {
    EXPECT_EQ(a.value().achieved[i].factor, b.value().achieved[i].factor);
  }
  EXPECT_EQ(a.value().phases[1].access_param2,
            b.value().phases[1].access_param2);
}

TEST(DriftSynthesizerTest, TargetOutsideUnitIntervalIsInvalidArgument) {
  const Dataset dataset = MakeDataset();
  const DriftSynthesizer synth;
  const Result<SynthesizedTrajectory> fitted =
      synth.Synthesize(dataset, HotspotPhase(0.0), {1.5});
  ASSERT_FALSE(fitted.ok());
  EXPECT_TRUE(fitted.status().IsInvalidArgument());
}

TEST(DriftSynthesizerTest, InfeasibleTargetReportsTheCeiling) {
  // The dial's maximum achievable drift for this base phase is well below
  // 0.95; the synthesizer must reject the target up front (with the
  // measured ceiling in the message) instead of bisecting forever.
  const Dataset dataset = MakeDataset();
  const DriftSynthesizer synth;
  const Result<SynthesizedTrajectory> fitted =
      synth.Synthesize(dataset, HotspotPhase(0.0), {0.95});
  ASSERT_FALSE(fitted.ok());
  EXPECT_TRUE(fitted.status().IsInvalidArgument());
  EXPECT_NE(fitted.status().message().find("infeasible"), std::string::npos)
      << fitted.status().message();
}

TEST(DriftSynthesizerTest, StagnationGuardFailsInsteadOfSpinning) {
  // An impossible tolerance with a tiny evaluation budget must terminate
  // with FailedPrecondition and a diagnostic, never loop.
  const Dataset dataset = MakeDataset();
  DriftSynthesizerOptions options;
  options.tolerance = 1e-9;
  options.max_iterations_per_transition = 4;
  const DriftSynthesizer synth(options);
  const Result<SynthesizedTrajectory> fitted =
      synth.Synthesize(dataset, HotspotPhase(0.0), {0.3});
  ASSERT_FALSE(fitted.ok());
  EXPECT_TRUE(fitted.status().IsFailedPrecondition());
  EXPECT_NE(fitted.status().message().find("stagnated"), std::string::npos)
      << fitted.status().message();
}

TEST(DriftSynthesizerTest, EmptyDatasetIsRejected) {
  const Dataset empty;
  const DriftSynthesizer synth;
  const Result<SynthesizedTrajectory> fitted =
      synth.Synthesize(empty, HotspotPhase(0.0), {0.3});
  ASSERT_FALSE(fitted.ok());
  EXPECT_TRUE(fitted.status().IsInvalidArgument());
}

TEST(DriftSynthesizerTest, ZeroDialIsTheIdentity) {
  const DriftSynthesizer synth;
  const PhaseSpec base = HotspotPhase(0.25, /*get=*/0.7, /*update=*/0.3);
  const PhaseSpec same = synth.ApplyDial(base, 0.0);
  EXPECT_DOUBLE_EQ(same.access_param2, base.access_param2);
  EXPECT_DOUBLE_EQ(same.access_param, base.access_param);
  EXPECT_DOUBLE_EQ(same.mix.get, base.mix.get);
  EXPECT_DOUBLE_EQ(same.mix.update, base.mix.update);
}

TEST(DriftSynthesizerTest, LargerDialMovesPhaseFurther) {
  const Dataset dataset = MakeDataset();
  const DriftSynthesizer synth;
  const DriftMeter meter(synth.options().meter);
  const PhaseSpec base = HotspotPhase(0.0);
  const double small = meter.MeasurePhases(
      dataset, base, dataset, synth.ApplyDial(base, 0.2)).factor;
  const double large = meter.MeasurePhases(
      dataset, base, dataset, synth.ApplyDial(base, 0.9)).factor;
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace lsbench
