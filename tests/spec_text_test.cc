#include <gtest/gtest.h>

#include "core/spec_text.h"

namespace lsbench {
namespace {

constexpr char kGoodSpec[] = R"(
# full-featured spec
name = parse_me
seed = 99
interval_ms = 250
boxplot_sample_ms = 25
offline_training = false
sla_ms = 5
adjustment_window_ops = 123

[dataset]
kind = uniform
num_keys = 2000
seed = 1

[dataset]
kind = gaussian
num_keys = 3000
seed = 2
param1 = 0.4
param2 = 0.05

[phase]
name = first
dataset = 0
ops = 1000
mix = get:0.5,insert:0.3,scan:0.2
access = hotspot
access_param = 0.2
arrival = poisson
arrival_qps = 5000
scan_length = 42

[phase]
name = second
dataset = 1
ops = 2000
mix = range_count:0.9,update:0.1
access = uniform
transition = cosine
transition_ops = 500
holdout = true
range_selectivity = 0.01
)";

TEST(SpecTextTest, ParsesFullSpec) {
  const Result<RunSpec> result = ParseRunSpecText(kGoodSpec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunSpec& spec = result.value();
  EXPECT_EQ(spec.name, "parse_me");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.interval_nanos, 250000000);
  EXPECT_EQ(spec.boxplot_sample_nanos, 25000000);
  EXPECT_FALSE(spec.offline_training);
  EXPECT_EQ(spec.sla.threshold_nanos, 5000000);
  EXPECT_EQ(spec.adjustment_window_ops, 123u);

  ASSERT_EQ(spec.datasets.size(), 2u);
  EXPECT_EQ(spec.datasets[0].size(), 2000u);
  EXPECT_EQ(spec.datasets[1].size(), 3000u);

  ASSERT_EQ(spec.phases.size(), 2u);
  const PhaseSpec& p0 = spec.phases[0];
  EXPECT_EQ(p0.name, "first");
  EXPECT_EQ(p0.dataset_index, 0);
  EXPECT_EQ(p0.num_operations, 1000u);
  EXPECT_DOUBLE_EQ(p0.mix.get, 0.5);
  EXPECT_DOUBLE_EQ(p0.mix.insert, 0.3);
  EXPECT_DOUBLE_EQ(p0.mix.scan, 0.2);
  EXPECT_EQ(p0.access, AccessPattern::kHotSpot);
  EXPECT_DOUBLE_EQ(p0.access_param, 0.2);
  EXPECT_EQ(p0.arrival, ArrivalPattern::kPoisson);
  EXPECT_DOUBLE_EQ(p0.arrival_rate_qps, 5000.0);
  EXPECT_EQ(p0.scan_length, 42u);

  const PhaseSpec& p1 = spec.phases[1];
  EXPECT_EQ(p1.dataset_index, 1);
  EXPECT_DOUBLE_EQ(p1.mix.range_count, 0.9);
  EXPECT_EQ(p1.transition_in, TransitionKind::kCosine);
  EXPECT_EQ(p1.transition_operations, 500u);
  EXPECT_TRUE(p1.holdout);
  EXPECT_DOUBLE_EQ(p1.range_selectivity, 0.01);
}

TEST(SpecTextTest, ParsedSpecValidates) {
  const Result<RunSpec> result = ParseRunSpecText(kGoodSpec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().Validate().ok());
}

TEST(SpecTextTest, RejectsUnknownKeys) {
  EXPECT_TRUE(ParseRunSpecText("bogus_key = 1\n[dataset]\n[phase]\nops = 1\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText("[dataset]\nshape = zipf\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText("[phase]\npriority = high\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(SpecTextTest, RejectsBadValues) {
  EXPECT_TRUE(
      ParseRunSpecText("seed = banana\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText("[dataset]\nkind = pyramid\nnum_keys = 10\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText("[phase]\nmix = fly:1.0\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText("[phase]\naccess = psychic\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText("[bogus_section]\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText("just some text\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(SpecTextTest, RejectsStructurallyInvalidSpecs) {
  // No datasets / phases -> Validate() fails.
  EXPECT_FALSE(ParseRunSpecText("name = empty\n").ok());
  // Phase referencing a missing dataset.
  EXPECT_FALSE(ParseRunSpecText(
                   "[dataset]\nnum_keys = 100\n[phase]\ndataset = 5\n"
                   "ops = 10\nmix = get:1\n")
                   .ok());
}

TEST(SpecTextTest, CommentsAndWhitespaceIgnored) {
  const Result<RunSpec> result = ParseRunSpecText(
      "  name =  spaced   # trailing comment\n"
      "# full-line comment\n"
      "\n"
      "[dataset]\n"
      "  num_keys = 100   \n"
      "[phase]\n"
      "ops = 10\n"
      "mix = get:1.0\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().name, "spaced");
  EXPECT_EQ(result.value().datasets[0].size(), 100u);
}

TEST(SpecTextTest, EmailDatasetKind) {
  const Result<RunSpec> result = ParseRunSpecText(
      "[dataset]\nkind = emails\nnum_keys = 500\nseed = 3\n"
      "[phase]\nops = 10\nmix = get:1.0\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().datasets[0].name, "emails");
  EXPECT_GT(result.value().datasets[0].size(), 100u);
}

// ---------------------------------------------------------------------------
// [faults] / [resilience]
// ---------------------------------------------------------------------------

constexpr char kFaultedSpec[] = R"(
name = faulted
fault_seed = 777
fault_load_failures = 2

[dataset]
num_keys = 500

[phase]
name = healthy
ops = 100
mix = get:1.0

[phase]
name = stormy
ops = 100
mix = get:1.0

[faults]
phase = -1
latency_spike_rate = 0.01
latency_spike_us = 1500

[faults]
phase = 1
execute_fail_rate = 0.25
execute_fail_code = resource_exhausted
stall_rate = 0.001
stall_us = 50000
fail_train = true
train_hang_us = 2000

[resilience]
op_timeout_us = 10000
max_retries = 3
backoff_initial_us = 500
backoff_multiplier = 1.5
backoff_max_us = 100000
backoff_jitter = 0.2
breaker_enabled = true
breaker_window_ops = 50
breaker_threshold = 0.4
breaker_cooldown_us = 250000
breaker_halfopen_probes = 6
)";

TEST(SpecTextTest, ParsesFaultsAndResilience) {
  const Result<RunSpec> result = ParseRunSpecText(kFaultedSpec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunSpec& spec = result.value();

  EXPECT_EQ(spec.faults.seed, 777u);
  EXPECT_EQ(spec.faults.load_failures, 2u);
  ASSERT_EQ(spec.faults.windows.size(), 2u);
  const FaultWindow& wildcard = spec.faults.windows[0];
  EXPECT_EQ(wildcard.phase, -1);
  EXPECT_DOUBLE_EQ(wildcard.latency_spike_rate, 0.01);
  EXPECT_EQ(wildcard.latency_spike_nanos, 1500000);
  const FaultWindow& stormy = spec.faults.windows[1];
  EXPECT_EQ(stormy.phase, 1);
  EXPECT_DOUBLE_EQ(stormy.execute_fail_rate, 0.25);
  EXPECT_EQ(stormy.execute_fail_code, StatusCode::kResourceExhausted);
  EXPECT_EQ(stormy.stall_nanos, 50000000);
  EXPECT_TRUE(stormy.fail_train);
  EXPECT_EQ(stormy.train_hang_nanos, 2000000);

  const ResilienceSpec& r = spec.resilience;
  EXPECT_EQ(r.op_timeout_nanos, 10000000);
  EXPECT_EQ(r.max_retries, 3u);
  EXPECT_EQ(r.backoff_initial_nanos, 500000);
  EXPECT_DOUBLE_EQ(r.backoff_multiplier, 1.5);
  EXPECT_EQ(r.backoff_max_nanos, 100000000);
  EXPECT_DOUBLE_EQ(r.backoff_jitter, 0.2);
  EXPECT_TRUE(r.breaker_enabled);
  EXPECT_EQ(r.breaker_window_ops, 50u);
  EXPECT_DOUBLE_EQ(r.breaker_failure_threshold, 0.4);
  EXPECT_EQ(r.breaker_cooldown_nanos, 250000000);
  EXPECT_EQ(r.breaker_half_open_probes, 6u);
}

TEST(SpecTextTest, FaultsRoundTripLosslessly) {
  const RunSpec parsed = ParseRunSpecText(kFaultedSpec).value();

  // Re-embed the rendered fault/resilience blocks into a minimal base spec
  // and parse again: both blocks must survive byte-exactly in structure.
  const std::string rendered = RenderResilienceText(parsed);
  EXPECT_NE(rendered.find("[faults]"), std::string::npos);
  EXPECT_NE(rendered.find("[resilience]"), std::string::npos);
  const std::string base =
      "name = roundtrip\n[dataset]\nnum_keys = 500\n"
      "[phase]\nops = 100\nmix = get:1.0\n"
      "[phase]\nops = 100\nmix = get:1.0\n";
  const Result<RunSpec> reparsed = ParseRunSpecText(base + rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed.value().faults == parsed.faults);
  EXPECT_TRUE(reparsed.value().resilience == parsed.resilience);

  // Rendering the reparsed spec reproduces the same text (fixed point).
  EXPECT_EQ(RenderResilienceText(reparsed.value()), rendered);
}

TEST(SpecTextTest, RenderResilienceIsEmptyForDefaultSpec) {
  const RunSpec plain =
      ParseRunSpecText(
          "[dataset]\nnum_keys = 100\n[phase]\nops = 10\nmix = get:1\n")
          .value();
  EXPECT_EQ(RenderResilienceText(plain), "");
}

TEST(SpecTextTest, RejectsBadFaultValues) {
  const std::string base =
      "[dataset]\nnum_keys = 100\n[phase]\nops = 10\nmix = get:1\n";
  EXPECT_TRUE(ParseRunSpecText(base + "[faults]\nexecute_fail_code = maybe\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText(base + "[faults]\nblast_radius = 3\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText(base + "[resilience]\nshields = up\n")
                  .status()
                  .IsInvalidArgument());
  // Validate() rejects out-of-range rates and windows for missing phases.
  EXPECT_FALSE(ParseRunSpecText(base + "[faults]\nexecute_fail_rate = 1.5\n")
                   .ok());
  EXPECT_FALSE(ParseRunSpecText(base + "[faults]\nphase = 9\n").ok());
}

TEST(SpecTextTest, ParsesExecutionSection) {
  const std::string base =
      "[dataset]\nnum_keys = 100\n[phase]\nops = 10\nmix = get:1\n";
  const Result<RunSpec> parsed =
      ParseRunSpecText(base + "[execution]\nworkers = 4\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().execution.workers, 4u);

  // Absent section -> the serial default.
  EXPECT_EQ(ParseRunSpecText(base).value().execution.workers, 1u);
}

TEST(SpecTextTest, RejectsBadExecutionValues) {
  const std::string base =
      "[dataset]\nnum_keys = 100\n[phase]\nops = 10\nmix = get:1\n";
  EXPECT_TRUE(ParseRunSpecText(base + "[execution]\nthreads = 4\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseRunSpecText(base + "[execution]\nworkers = banana\n")
                  .status()
                  .IsInvalidArgument());
  // Validate() rejects a zero worker count.
  EXPECT_FALSE(ParseRunSpecText(base + "[execution]\nworkers = 0\n").ok());
}

}  // namespace
}  // namespace lsbench
