#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/btree.h"
#include "index/kv_index.h"
#include "index/lsm.h"
#include "index/skiplist.h"
#include "index/sorted_array.h"
#include "learned/adaptive.h"
#include "learned/pgm.h"
#include "learned/rmi.h"
#include "util/random.h"

namespace lsbench {
namespace {

/// Factory + label for every KvIndex implementation in the library. The
/// same behavioral contract must hold for traditional and learned indexes —
/// precisely the "benchmark must not impose architectural constraints"
/// stance of the paper, expressed as a conformance suite.
struct IndexFactory {
  std::string label;
  std::function<std::unique_ptr<KvIndex>()> make;
};

std::vector<IndexFactory> AllFactories() {
  return {
      {"btree", [] { return std::make_unique<BTree>(16); }},
      {"sorted_array",
       [] {
         return std::make_unique<SortedArrayIndex>(
             SortedArrayIndex::SearchMode::kBinary);
       }},
      {"sorted_array_interp",
       [] {
         return std::make_unique<SortedArrayIndex>(
             SortedArrayIndex::SearchMode::kInterpolation);
       }},
      {"skiplist", [] { return std::make_unique<SkipList>(); }},
      {"lsm",
       [] {
         LsmOptions options;
         options.memtable_limit = 128;
         options.level_size_ratio = 4;
         return std::make_unique<LsmTree>(options);
       }},
      {"lsm_learned",
       [] {
         LsmOptions options;
         options.memtable_limit = 128;
         options.level_size_ratio = 4;
         options.learned_runs = true;
         options.learned_epsilon = 8;
         return std::make_unique<LsmTree>(options);
       }},
      {"rmi",
       [] {
         RmiOptions options;
         options.num_leaf_models = 32;
         return std::make_unique<RmiIndex>(options);
       }},
      {"pgm", [] { return std::make_unique<PgmIndex>(16); }},
      {"alex_lite",
       [] {
         AdaptiveOptions options;
         options.max_segment_entries = 256;
         return std::make_unique<AdaptiveLearnedIndex>(options);
       }},
  };
}

class IndexConformanceTest : public ::testing::TestWithParam<IndexFactory> {
 protected:
  std::unique_ptr<KvIndex> index_ = GetParam().make();
};

TEST_P(IndexConformanceTest, StartsEmpty) {
  EXPECT_EQ(index_->size(), 0u);
  EXPECT_TRUE(index_->empty());
  EXPECT_FALSE(index_->Get(1).has_value());
  EXPECT_FALSE(index_->Erase(1));
  std::vector<KeyValue> out;
  EXPECT_EQ(index_->Scan(0, 10, &out), 0u);
}

TEST_P(IndexConformanceTest, InsertThenGet) {
  EXPECT_TRUE(index_->Insert(100, 7));
  EXPECT_EQ(index_->size(), 1u);
  ASSERT_TRUE(index_->Get(100).has_value());
  EXPECT_EQ(*index_->Get(100), 7u);
  EXPECT_FALSE(index_->Get(99).has_value());
  EXPECT_FALSE(index_->Get(101).has_value());
}

TEST_P(IndexConformanceTest, OverwriteKeepsSizeAndUpdatesValue) {
  index_->Insert(5, 1);
  EXPECT_FALSE(index_->Insert(5, 2));
  EXPECT_EQ(index_->size(), 1u);
  EXPECT_EQ(*index_->Get(5), 2u);
}

TEST_P(IndexConformanceTest, EraseRemoves) {
  index_->Insert(5, 1);
  index_->Insert(6, 2);
  EXPECT_TRUE(index_->Erase(5));
  EXPECT_FALSE(index_->Erase(5));
  EXPECT_EQ(index_->size(), 1u);
  EXPECT_FALSE(index_->Get(5).has_value());
  EXPECT_TRUE(index_->Get(6).has_value());
}

TEST_P(IndexConformanceTest, BulkLoadThenLookupAll) {
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 2000; ++i) pairs.emplace_back(i * 7 + 3, i);
  index_->BulkLoad(pairs);
  EXPECT_EQ(index_->size(), pairs.size());
  for (const auto& [k, v] : pairs) {
    ASSERT_TRUE(index_->Get(k).has_value()) << GetParam().label << " key " << k;
    EXPECT_EQ(*index_->Get(k), v);
  }
  // Neighbors of stored keys must be absent.
  EXPECT_FALSE(index_->Get(2).has_value());
  EXPECT_FALSE(index_->Get(4).has_value());
  EXPECT_FALSE(index_->Get(pairs.back().first + 1).has_value());
}

TEST_P(IndexConformanceTest, ScanIsSortedAndBounded) {
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 500; ++i) pairs.emplace_back(i * 10, i);
  index_->BulkLoad(pairs);
  std::vector<KeyValue> out;
  const size_t got = index_->Scan(101, 25, &out);
  EXPECT_EQ(got, 25u);
  ASSERT_EQ(out.size(), 25u);
  EXPECT_EQ(out.front().first, 110u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].first, out[i].first);
  }
}

TEST_P(IndexConformanceTest, ScanHonorsLimitLargerThanRemainder) {
  index_->Insert(1, 1);
  index_->Insert(2, 2);
  std::vector<KeyValue> out;
  EXPECT_EQ(index_->Scan(0, 100, &out), 2u);
}

TEST_P(IndexConformanceTest, MixedWorkloadMatchesStdMap) {
  std::map<Key, Value> reference;
  Rng rng(555);
  // Warm start so learned structures have something to model.
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 1000; ++i) pairs.emplace_back(i * 100 + 50, i);
  index_->BulkLoad(pairs);
  for (const auto& [k, v] : pairs) reference[k] = v;

  for (int i = 0; i < 8000; ++i) {
    const Key key = rng.NextBounded(120000);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        const Value value = rng.Next() % 1000;
        const bool fresh = reference.find(key) == reference.end();
        EXPECT_EQ(index_->Insert(key, value), fresh)
            << GetParam().label << " op " << i;
        reference[key] = value;
        break;
      }
      case 2: {
        const bool existed = reference.erase(key) > 0;
        EXPECT_EQ(index_->Erase(key), existed)
            << GetParam().label << " op " << i;
        break;
      }
      default: {
        const auto it = reference.find(key);
        const auto got = index_->Get(key);
        if (it == reference.end()) {
          EXPECT_FALSE(got.has_value()) << GetParam().label << " op " << i;
        } else {
          ASSERT_TRUE(got.has_value()) << GetParam().label << " op " << i;
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(index_->size(), reference.size()) << GetParam().label;

  // Final scan equivalence.
  std::vector<KeyValue> all;
  index_->Scan(0, reference.size() + 10, &all);
  ASSERT_EQ(all.size(), reference.size()) << GetParam().label;
  auto it = reference.begin();
  for (const auto& [k, v] : all) {
    EXPECT_EQ(k, it->first) << GetParam().label;
    EXPECT_EQ(v, it->second) << GetParam().label;
    ++it;
  }
}

TEST_P(IndexConformanceTest, MemoryBytesIsPositiveWhenLoaded) {
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 1000; ++i) pairs.emplace_back(i, i);
  index_->BulkLoad(pairs);
  EXPECT_GT(index_->MemoryBytes(), 1000u * 8);
}

TEST_P(IndexConformanceTest, NameIsNonEmpty) {
  EXPECT_FALSE(index_->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexConformanceTest, ::testing::ValuesIn(AllFactories()),
    [](const ::testing::TestParamInfo<IndexFactory>& param_info) {
      return param_info.param.label;
    });

}  // namespace
}  // namespace lsbench
