#include <gtest/gtest.h>

#include "index/btree.h"
#include "index/skiplist.h"
#include "txn/op_log.h"
#include "txn/write_batch.h"
#include "util/random.h"

namespace lsbench {
namespace {

TEST(WriteBatchTest, AppliesInOrder) {
  WriteBatch batch;
  batch.Put(1, 10);
  batch.Put(2, 20);
  batch.Put(1, 11);  // Later write wins.
  batch.Delete(2);
  EXPECT_EQ(batch.size(), 4u);

  BTree tree;
  const size_t changed = batch.ApplyTo(&tree);
  // Put(1) new, Put(2) new, Put(1) overwrite (no change), Delete(2) change.
  EXPECT_EQ(changed, 3u);
  EXPECT_EQ(*tree.Get(1), 11u);
  EXPECT_FALSE(tree.Get(2).has_value());
}

TEST(WriteBatchTest, ClearEmpties) {
  WriteBatch batch;
  batch.Put(1, 1);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
}

TEST(OpLogTest, SequencesAreMonotonic) {
  OpLog log;
  EXPECT_EQ(log.last_sequence(), 0u);
  EXPECT_EQ(log.Append({Mutation::Kind::kPut, 1, 10}), 1u);
  EXPECT_EQ(log.Append({Mutation::Kind::kDelete, 1, 0}), 2u);
  EXPECT_EQ(log.last_sequence(), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(OpLogTest, AppendBatchReturnsLastSequence) {
  OpLog log;
  WriteBatch batch;
  batch.Put(1, 1);
  batch.Put(2, 2);
  EXPECT_EQ(log.AppendBatch(batch), 2u);
  EXPECT_EQ(log.AppendBatch(WriteBatch()), 2u);  // Empty batch: unchanged.
}

TEST(OpLogTest, ReplayRebuildsEquivalentIndex) {
  // Property: a replay into a fresh index reproduces the live index exactly,
  // even across different index implementations.
  OpLog log;
  BTree live;
  Rng rng(47);
  for (int i = 0; i < 5000; ++i) {
    const Key key = rng.NextBounded(500);
    if (rng.NextBool(0.7)) {
      const Value value = rng.Next();
      live.Insert(key, value);
      log.Append({Mutation::Kind::kPut, key, value});
    } else {
      live.Erase(key);
      log.Append({Mutation::Kind::kDelete, key, 0});
    }
  }

  SkipList rebuilt;
  EXPECT_EQ(log.ReplayInto(&rebuilt), log.size());
  EXPECT_EQ(rebuilt.size(), live.size());
  std::vector<KeyValue> a, b;
  live.Scan(0, live.size() + 1, &a);
  rebuilt.Scan(0, rebuilt.size() + 1, &b);
  EXPECT_EQ(a, b);
}

TEST(OpLogTest, PartialReplayFromCheckpoint) {
  OpLog log;
  log.Append({Mutation::Kind::kPut, 1, 10});
  log.Append({Mutation::Kind::kPut, 2, 20});
  log.Append({Mutation::Kind::kPut, 3, 30});
  BTree tree;
  EXPECT_EQ(log.ReplayInto(&tree, /*after_sequence=*/2), 1u);
  EXPECT_FALSE(tree.Get(1).has_value());
  EXPECT_TRUE(tree.Get(3).has_value());
}

TEST(OpLogTest, TruncateDropsPrefix) {
  OpLog log;
  for (Key i = 1; i <= 10; ++i) log.Append({Mutation::Kind::kPut, i, i});
  log.TruncateUpTo(7);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records().front().sequence, 8u);
  EXPECT_EQ(log.last_sequence(), 10u);
  // New appends continue the sequence.
  EXPECT_EQ(log.Append({Mutation::Kind::kPut, 99, 99}), 11u);
}

TEST(OpLogTest, TruncateAllAndNone) {
  OpLog log;
  log.Append({Mutation::Kind::kPut, 1, 1});
  log.TruncateUpTo(0);
  EXPECT_EQ(log.size(), 1u);
  log.TruncateUpTo(100);
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace lsbench
