// Determinism pinning for the observability layer: simulation-mode runs of
// specs/concurrent_demo.lsb must produce byte-identical merged event and
// trace streams run to run, at workers = 1 and workers = 4 alike, and
// observing a run (tracing + profiling + metrics) must not perturb the
// operation stream at all. These are the repo's strongest reproducibility
// guarantees; any regression fails loudly with the differing hashes.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/driver.h"
#include "core/event_sink.h"
#include "core/spec_text.h"
#include "data/dataset.h"
#include "obs/observability.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

RunSpec LoadConcurrentDemoSpec() {
  const std::string path =
      std::string(LSBENCH_SPEC_DIR) + "/concurrent_demo.lsb";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing spec file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<RunSpec> parsed = ParseRunSpecText(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

/// One full simulation run with observability on: virtual clock shared by
/// driver and SUT, so every exported timestamp is virtual.
RunResult RunOnce(uint32_t workers, bool observe = true) {
  RunSpec spec = LoadConcurrentDemoSpec();
  spec.execution.workers = workers;
  spec.observability.trace = observe;
  spec.observability.profile = observe;
  spec.observability.metrics = observe;

  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  LearnedSystemOptions sut_options;
  LearnedKvSystem sut(sut_options, &clock);
  Result<RunResult> result = driver.Run(spec, &sut);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

RunSpec LoadSpecFile(const char* name) {
  const std::string path = std::string(LSBENCH_SPEC_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing spec file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<RunSpec> parsed = ParseRunSpecText(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

/// One full simulation run of an arbitrary spec with observability on.
RunResult RunSpecOnce(RunSpec spec, uint32_t workers) {
  spec.execution.workers = workers;
  spec.observability.trace = true;
  spec.observability.profile = true;
  spec.observability.metrics = true;
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  LearnedSystemOptions sut_options;
  LearnedKvSystem sut(sut_options, &clock);
  Result<RunResult> result = driver.Run(spec, &sut);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

uint64_t MetricValue(const MetricsSnapshot& snapshot,
                     const std::string& name) {
  for (const auto& [metric, value] : snapshot.counters) {
    if (metric == name) return value;
  }
  return 0;
}

class TraceDeterminismTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TraceDeterminismTest, RepeatedRunsAreByteIdentical) {
  const uint32_t workers = GetParam();
  const RunResult a = RunOnce(workers);
  const RunResult b = RunOnce(workers);

  // The merged event stream and the merged trace are byte-identical across
  // two independent runs of the same configuration.
  EXPECT_EQ(SerializeEventStream(a.events), SerializeEventStream(b.events));
  EXPECT_EQ(SerializeTrace(a.observability.trace), SerializeTrace(b.observability.trace));
  EXPECT_EQ(HashTrace(a.observability.trace), HashTrace(b.observability.trace));

  // The --trace-out payload (spans + stages + metrics) is too.
  EXPECT_EQ(RenderTraceFile(a.observability, a.run_name, a.sut_name, workers),
            RenderTraceFile(b.observability, b.run_name, b.sut_name, workers));

#if !defined(LSBENCH_NO_TRACING)
  // The trace actually recorded the hot path. (With tracing compiled out
  // the streams are empty — trivially identical, which is still the
  // documented contract of that build mode.)
  EXPECT_FALSE(a.observability.trace.empty());
  EXPECT_FALSE(a.observability.stages.empty());
#endif
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, TraceDeterminismTest,
                         ::testing::Values(1u, 4u));

class BatchDeterminismTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BatchDeterminismTest, BatchRunsAreByteIdentical) {
  // The batch dispatch path (kBatchGet/kBatchPut through the monomorphized
  // executor, bulk-recorded into the event arena) is held to the same
  // reproducibility bar as the scalar path: two independent runs of
  // specs/batch_demo.lsb produce byte-identical merged event and trace
  // streams, at workers = 1 and workers = 4 alike.
  const uint32_t workers = GetParam();
  const RunResult a = RunSpecOnce(LoadSpecFile("batch_demo.lsb"), workers);
  const RunResult b = RunSpecOnce(LoadSpecFile("batch_demo.lsb"), workers);
  EXPECT_EQ(SerializeEventStream(a.events), SerializeEventStream(b.events));
  EXPECT_EQ(SerializeTrace(a.observability.trace),
            SerializeTrace(b.observability.trace));
  EXPECT_EQ(RenderTraceFile(a.observability, a.run_name, a.sut_name, workers),
            RenderTraceFile(b.observability, b.run_name, b.sut_name, workers));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, BatchDeterminismTest,
                         ::testing::Values(1u, 4u));

TEST(BatchDeterminismTest, BatchSizeOneIsBitIdenticalToScalar) {
  // batch_size = 1 is not "a batch of one": the generator degrades the draw
  // to the scalar op class with identical RNG consumption, so a batch_mix
  // spec at batch_size = 1 and the equivalent scalar-mix spec produce
  // byte-identical merged event streams. Batching is an execution-strategy
  // knob, never a semantic one.
  RunSpec scalar;
  scalar.name = "degenerate";
  scalar.seed = 99;
  DatasetOptions dataset_options;
  dataset_options.num_keys = 5000;
  dataset_options.seed = 3;
  scalar.datasets.push_back(GenerateDataset(UniformUnit(), dataset_options));
  PhaseSpec phase;
  phase.name = "p";
  phase.dataset_index = 0;
  phase.num_operations = 20000;
  phase.mix.get = 0.9;
  phase.mix.update = 0.1;
  scalar.phases.push_back(phase);

  RunSpec batched = scalar;
  batched.phases[0].mix.get = 0.0;
  batched.phases[0].mix.update = 0.0;
  batched.phases[0].mix.batch_get = 0.9;
  batched.phases[0].mix.batch_put = 0.1;
  batched.phases[0].batch_size = 1;

  for (const uint32_t workers : {1u, 4u}) {
    const RunResult a = RunSpecOnce(scalar, workers);
    const RunResult b = RunSpecOnce(batched, workers);
    EXPECT_EQ(SerializeEventStream(a.events), SerializeEventStream(b.events))
        << "workers=" << workers;
  }
}

TEST(TraceDeterminismTest, ObservingDoesNotPerturbTheRun) {
  // The exact same simulated run with observability fully on and fully off
  // must produce the same operation stream: hooks read clocks, they never
  // advance them or draw randomness.
  const RunResult observed = RunOnce(/*workers=*/4, /*observe=*/true);
  const RunResult blind = RunOnce(/*workers=*/4, /*observe=*/false);
  EXPECT_EQ(SerializeEventStream(observed.events),
            SerializeEventStream(blind.events));
  EXPECT_TRUE(blind.observability.trace.empty());
  EXPECT_TRUE(blind.observability.stages.empty());
}

TEST(TraceDeterminismTest, AggregateTotalsAgreeAcrossWorkerCounts) {
  // workers = 1 and workers = 4 run different (forked) operation streams,
  // so their traces differ span by span — but the aggregate accounting
  // must agree: same operation count, same issued/recorded totals, same
  // per-stage sample counts.
  const RunResult w1 = RunOnce(1);
  const RunResult w4 = RunOnce(4);
  EXPECT_EQ(w1.events.size(), w4.events.size());
  EXPECT_EQ(MetricValue(w1.observability.metrics, "stream.ops_issued"),
            MetricValue(w4.observability.metrics, "stream.ops_issued"));
  EXPECT_EQ(MetricValue(w1.observability.metrics, "sink.events_recorded"),
            MetricValue(w4.observability.metrics, "sink.events_recorded"));
  EXPECT_EQ(MetricValue(w1.observability.metrics, "executor.attempts"),
            MetricValue(w4.observability.metrics, "executor.attempts"));

  uint64_t w1_execute_samples = 0;
  uint64_t w4_execute_samples = 0;
  for (const PhaseStageBreakdown& pb : w1.observability.stages) {
    w1_execute_samples +=
        pb.stages[static_cast<size_t>(Stage::kExecute)].samples;
  }
  for (const PhaseStageBreakdown& pb : w4.observability.stages) {
    w4_execute_samples +=
        pb.stages[static_cast<size_t>(Stage::kExecute)].samples;
  }
  EXPECT_EQ(w1_execute_samples, w4_execute_samples);
}

TEST(TraceDeterminismTest, MergedTraceIsProvenanceOrdered) {
#if defined(LSBENCH_NO_TRACING)
  GTEST_SKIP() << "tracing compiled out (LSBENCH_NO_TRACING)";
#endif
  const RunResult run = RunOnce(4);
  const TraceStream& trace = run.observability.trace;
  ASSERT_FALSE(trace.empty());
  for (size_t i = 1; i < trace.size(); ++i) {
    const TraceSpan& prev = trace[i - 1];
    const TraceSpan& cur = trace[i];
    const bool ordered =
        prev.start_nanos < cur.start_nanos ||
        (prev.start_nanos == cur.start_nanos &&
         (prev.worker < cur.worker ||
          (prev.worker == cur.worker && prev.seq < cur.seq)));
    ASSERT_TRUE(ordered) << "trace out of (start, worker, seq) order at "
                         << i;
  }
}

}  // namespace
}  // namespace lsbench
