#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/reservoir.h"
#include "stats/similarity.h"
#include "util/random.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// StreamingStats
// ---------------------------------------------------------------------------

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(StreamingStatsTest, MatchesExactFormulas) {
  StreamingStats s;
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
}

TEST(StreamingStatsTest, MergeEquivalentToSequential) {
  Rng rng(41);
  StreamingStats a, b, all;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.NextGaussian() * 10 + 5;
    (i < 700 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmptySides) {
  StreamingStats a, b;
  a.Add(1.0);
  a.Merge(b);  // Empty other.
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // Empty this.
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(StreamingStatsTest, CoefficientOfVariation) {
  StreamingStats s;
  for (double v : {10.0, 10.0, 10.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.CoefficientOfVariation(), 0.0);
}

// ---------------------------------------------------------------------------
// Quantiles & box plots
// ---------------------------------------------------------------------------

TEST(QuantileTest, LinearInterpolation) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 25);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0 / 3.0), 20);
}

TEST(QuantileTest, EmptyAndSingle) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.9), 7.0);
}

TEST(BoxPlotTest, FiveNumberSummary) {
  const BoxPlotSummary s = ComputeBoxPlot({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(s.count, 9u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_DOUBLE_EQ(s.max, 9);
  EXPECT_DOUBLE_EQ(s.q1, 3);
  EXPECT_DOUBLE_EQ(s.q3, 7);
  EXPECT_DOUBLE_EQ(s.mean, 5);
  EXPECT_TRUE(s.outliers.empty());
  EXPECT_DOUBLE_EQ(s.whisker_low, 1);
  EXPECT_DOUBLE_EQ(s.whisker_high, 9);
}

TEST(BoxPlotTest, DetectsOutliers) {
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(100.0 + i % 5);
  values.push_back(1000.0);  // Far outlier.
  values.push_back(-500.0);  // Far outlier.
  const BoxPlotSummary s = ComputeBoxPlot(values);
  ASSERT_EQ(s.outliers.size(), 2u);
  EXPECT_DOUBLE_EQ(s.outliers.front(), -500.0);
  EXPECT_DOUBLE_EQ(s.outliers.back(), 1000.0);
  EXPECT_GE(s.whisker_low, 100.0);
  EXPECT_LE(s.whisker_high, 104.0);
  EXPECT_DOUBLE_EQ(s.min, -500.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(BoxPlotTest, EmptyInput) {
  const BoxPlotSummary s = ComputeBoxPlot({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(BoxPlotTest, ConstantData) {
  const BoxPlotSummary s = ComputeBoxPlot({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(s.Iqr(), 0.0);
  EXPECT_TRUE(s.outliers.empty());
  EXPECT_DOUBLE_EQ(s.whisker_low, 5.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 5.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputs) {
  EXPECT_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
}

// ---------------------------------------------------------------------------
// Kolmogorov–Smirnov
// ---------------------------------------------------------------------------

std::vector<double> SampleUniform(Rng* rng, int n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->NextDouble();
  return v;
}

TEST(KsTest, IdenticalSamplesHaveZeroStatistic) {
  Rng rng(43);
  const auto a = SampleUniform(&rng, 500);
  const KsResult r = KolmogorovSmirnov(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(KsTest, SameDistributionHasSmallStatistic) {
  Rng rng(47);
  const auto a = SampleUniform(&rng, 4000);
  const auto b = SampleUniform(&rng, 4000);
  const KsResult r = KolmogorovSmirnov(a, b);
  EXPECT_LT(r.statistic, 0.05);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, DisjointDistributionsHaveStatisticOne) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 20, 30};
  const KsResult r = KolmogorovSmirnov(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 0.1);
}

TEST(KsTest, ShiftedGaussiansDetected) {
  Rng rng(53);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian() + 1.0);
  }
  const KsResult r = KolmogorovSmirnov(a, b);
  EXPECT_GT(r.statistic, 0.3);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov({}, {}).statistic, 0.0);
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov({1.0}, {}).statistic, 1.0);
}

TEST(KsTest, StatisticIsSymmetric) {
  Rng rng(59);
  const auto a = SampleUniform(&rng, 300);
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) b.push_back(rng.NextGaussian() * 0.1 + 0.3);
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov(a, b).statistic,
                   KolmogorovSmirnov(b, a).statistic);
}

// ---------------------------------------------------------------------------
// MMD
// ---------------------------------------------------------------------------

TEST(MmdTest, SameDistributionNearZero) {
  Rng rng(61);
  const auto a = SampleUniform(&rng, 300);
  const auto b = SampleUniform(&rng, 300);
  EXPECT_NEAR(MmdSquared(a, b), 0.0, 0.01);
}

TEST(MmdTest, DifferentDistributionsPositive) {
  Rng rng(67);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.NextGaussian() * 0.05 + 0.2);
    b.push_back(rng.NextGaussian() * 0.05 + 0.8);
  }
  EXPECT_GT(MmdSquared(a, b), 0.1);
}

TEST(MmdTest, GreaterSeparationGreaterMmd) {
  Rng rng(71);
  std::vector<double> base, near, far;
  for (int i = 0; i < 200; ++i) {
    base.push_back(rng.NextGaussian() * 0.1);
    near.push_back(rng.NextGaussian() * 0.1 + 0.2);
    far.push_back(rng.NextGaussian() * 0.1 + 2.0);
  }
  EXPECT_LT(MmdSquared(base, near, 0.5), MmdSquared(base, far, 0.5));
}

TEST(MmdTest, TinySamplesReturnZero) {
  EXPECT_EQ(MmdSquared({1.0}, {2.0}), 0.0);
}

// ---------------------------------------------------------------------------
// Similarity metric properties (what the drift factor builds on)
// ---------------------------------------------------------------------------

TEST(KsTest, InvariantUnderMonotoneRescaling) {
  // KS compares CDFs through order statistics only: applying the same
  // affine map to both samples cannot change the statistic.
  Rng rng(73);
  const auto a = SampleUniform(&rng, 400);
  const auto b = SampleUniform(&rng, 300);
  std::vector<double> a_scaled, b_scaled;
  for (double x : a) a_scaled.push_back(1000.0 * x + 5.0);
  for (double x : b) b_scaled.push_back(1000.0 * x + 5.0);
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov(a, b).statistic,
                   KolmogorovSmirnov(a_scaled, b_scaled).statistic);
}

TEST(MmdTest, SymmetricInArguments) {
  Rng rng(79);
  std::vector<double> a, b;
  for (int i = 0; i < 250; ++i) {
    a.push_back(rng.NextGaussian() * 0.2 + 0.3);
    b.push_back(rng.NextDouble());
  }
  // Symmetric up to floating-point summation order (the cross term is
  // accumulated in a different sequence when the arguments swap).
  EXPECT_NEAR(MmdSquared(a, b), MmdSquared(b, a), 1e-9);
  EXPECT_NEAR(MmdSquared(a, b, 0.5), MmdSquared(b, a, 0.5), 1e-9);
}

TEST(MmdTest, IdenticalSamplesEstimateZero) {
  // d(X, X): the unbiased estimator may dip slightly below zero but must
  // stay within sampling noise of it — this is the property the drift
  // factor's clamp-then-sqrt relies on.
  Rng rng(83);
  const auto a = SampleUniform(&rng, 400);
  EXPECT_NEAR(MmdSquared(a, a), 0.0, 5e-3);
}

TEST(MmdTest, MedianHeuristicIsScaleInvariant) {
  // With the default bandwidth (median heuristic), rescaling both samples
  // by the same factor rescales the bandwidth too, so the estimate is
  // (numerically) scale-free. A fixed bandwidth loses this property.
  Rng rng(89);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.NextGaussian() * 0.05 + 0.2);
    b.push_back(rng.NextGaussian() * 0.05 + 0.6);
  }
  std::vector<double> a_scaled, b_scaled;
  for (double x : a) a_scaled.push_back(40.0 * x);
  for (double x : b) b_scaled.push_back(40.0 * x);
  EXPECT_NEAR(MmdSquared(a, b), MmdSquared(a_scaled, b_scaled), 1e-9);
}

TEST(MmdTest, DeterministicAcrossCalls) {
  Rng rng(97);
  const auto a = SampleUniform(&rng, 300);
  const auto b = SampleUniform(&rng, 300);
  EXPECT_EQ(MmdSquared(a, b), MmdSquared(a, b));
}

// ---------------------------------------------------------------------------
// Jaccard
// ---------------------------------------------------------------------------

TEST(JaccardTest, IdenticalSetsAreOne) {
  const std::unordered_set<uint64_t> a = {1, 2, 3};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
}

TEST(JaccardTest, DisjointSetsAreZero) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {3, 4}), 0.0);
}

TEST(JaccardTest, PartialOverlap) {
  // |{2,3}| / |{1,2,3,4}| = 0.5.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(JaccardTest, EmptySetsAreSimilar) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {}), 0.0);
}

TEST(WeightedJaccardTest, MatchesUnweightedOnUnitWeights) {
  const double w = WeightedJaccard({1, 2, 3}, {1, 1, 1}, {2, 3, 4}, {1, 1, 1});
  EXPECT_DOUBLE_EQ(w, 0.5);
}

TEST(WeightedJaccardTest, WeightsMatter) {
  // min(10,1)/max(10,1) = 0.1 on the shared key.
  EXPECT_DOUBLE_EQ(WeightedJaccard({1}, {10.0}, {1}, {1.0}), 0.1);
}

TEST(WeightedJaccardTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(WeightedJaccard({}, {}, {}, {}), 1.0);
}

// ---------------------------------------------------------------------------
// Subsample & Phi
// ---------------------------------------------------------------------------

TEST(SubsampleTest, NoOpWhenSmall) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_EQ(Subsample(v, 10), v);
}

TEST(SubsampleTest, ReducesToCap) {
  std::vector<double> v(1000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const auto s = Subsample(v, 100);
  EXPECT_EQ(s.size(), 100u);
  // Strided subsample preserves order and span.
  EXPECT_DOUBLE_EQ(s.front(), 0.0);
  EXPECT_GT(s.back(), 900.0);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(PhiTest, BoundsAndBlending) {
  EXPECT_DOUBLE_EQ(PhiDissimilarity(0.0, 1.0), 0.0);   // Identical.
  EXPECT_DOUBLE_EQ(PhiDissimilarity(1.0, 0.0), 1.0);   // Maximal.
  EXPECT_DOUBLE_EQ(PhiDissimilarity(1.0, 1.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(PhiDissimilarity(1.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(PhiDissimilarity(0.4, 0.7, 0.5), 0.5 * 0.4 + 0.5 * 0.3);
}

// ---------------------------------------------------------------------------
// Reservoir
// ---------------------------------------------------------------------------

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  ReservoirSampler<int> r(10);
  for (int i = 0; i < 5; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 5u);
  EXPECT_EQ(r.seen(), 5u);
}

TEST(ReservoirTest, CapsAtCapacity) {
  ReservoirSampler<int> r(16);
  for (int i = 0; i < 1000; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 16u);
  EXPECT_EQ(r.seen(), 1000u);
}

TEST(ReservoirTest, SampleIsRoughlyUniform) {
  // Each element should be retained with probability capacity/stream.
  const int trials = 400;
  const int stream = 200;
  const size_t capacity = 20;
  int first_half = 0, total = 0;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int> r(capacity, /*seed=*/1000 + t);
    for (int i = 0; i < stream; ++i) r.Add(i);
    for (int v : r.sample()) {
      ++total;
      if (v < stream / 2) ++first_half;
    }
  }
  EXPECT_NEAR(static_cast<double>(first_half) / total, 0.5, 0.05);
}

TEST(ReservoirTest, ClearResets) {
  ReservoirSampler<int> r(4);
  r.Add(1);
  r.Clear();
  EXPECT_EQ(r.sample().size(), 0u);
  EXPECT_EQ(r.seen(), 0u);
}

}  // namespace
}  // namespace lsbench
