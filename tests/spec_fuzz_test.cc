// Spec-parser robustness: (1) every shipped spec round-trips through
// parse -> print -> parse with an identical structural hash, identical
// dataset keys, and a render fixpoint; (2) seeded byte- and line-level
// mutation fuzzing of the shipped specs must never crash the parser — every
// outcome is either a parsed spec or an error Status. Failures report the
// mutation seed so the exact corpus entry can be replayed.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/spec_text.h"
#include "util/env.h"
#include "util/random.h"

namespace lsbench {
namespace {

const char* const kSpecFiles[] = {
    "batch_demo.lsb",
    "concurrent_demo.lsb",
    "demo_shift.lsb",
    "holdout_eval.lsb",
    "resilience_demo.lsb",
    "service_overload_demo.lsb",
    "scenarios/diurnal_burst.lsb",
    "scenarios/flash_crowd.lsb",
    "scenarios/hotspot_migration.lsb",
    "scenarios/repeating_session.lsb",
};

std::string ReadSpecFile(const char* name) {
  const std::string path = std::string(LSBENCH_SPEC_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing spec file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class SpecRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SpecRoundTripTest, ParsePrintParseIsIdentity) {
  const std::string text = ReadSpecFile(GetParam());
  Result<RunSpec> first = ParseRunSpecText(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  const Result<std::string> rendered = RenderRunSpecText(first.value());
  ASSERT_TRUE(rendered.ok()) << rendered.status().ToString();

  Result<RunSpec> second = ParseRunSpecText(rendered.value());
  ASSERT_TRUE(second.ok()) << "re-parse of rendered spec failed: "
                           << second.status().ToString() << "\n"
                           << rendered.value();

  // Semantically the same run: same structural hash, same generated keys,
  // same observability switches.
  EXPECT_EQ(first.value().StructuralHash(), second.value().StructuralHash());
  ASSERT_EQ(first.value().datasets.size(), second.value().datasets.size());
  for (size_t i = 0; i < first.value().datasets.size(); ++i) {
    EXPECT_EQ(first.value().datasets[i].keys,
              second.value().datasets[i].keys)
        << "dataset " << i << " diverged through the round trip";
  }
  EXPECT_TRUE(first.value().observability == second.value().observability);

  // Printing is a fixpoint: render(parse(render(spec))) == render(spec).
  const Result<std::string> rendered_again =
      RenderRunSpecText(second.value());
  ASSERT_TRUE(rendered_again.ok()) << rendered_again.status().ToString();
  EXPECT_EQ(rendered.value(), rendered_again.value());
}

INSTANTIATE_TEST_SUITE_P(ShippedSpecs, SpecRoundTripTest,
                         ::testing::ValuesIn(kSpecFiles),
                         [](const ::testing::TestParamInfo<const char*>&
                                param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '.' || c == '/') c = '_';
                           }
                           return name;
                         });

/// Applies one seeded mutation to `text`.
std::string Mutate(const std::string& text, Rng* rng) {
  std::string out = text;
  if (out.empty()) out = "x";
  switch (rng->NextBounded(6)) {
    case 0: {  // Flip one byte to a random printable-or-not value.
      out[rng->NextBounded(out.size())] =
          static_cast<char>(rng->NextBounded(256));
      break;
    }
    case 1: {  // Insert a random byte.
      out.insert(out.begin() + static_cast<ptrdiff_t>(
                                   rng->NextBounded(out.size() + 1)),
                 static_cast<char>(rng->NextBounded(256)));
      break;
    }
    case 2: {  // Delete a random byte.
      out.erase(out.begin() +
                static_cast<ptrdiff_t>(rng->NextBounded(out.size())));
      break;
    }
    case 3: {  // Truncate at a random point.
      out.resize(rng->NextBounded(out.size() + 1));
      break;
    }
    case 4: {  // Delete one whole line.
      std::vector<std::string> lines;
      std::istringstream in(out);
      for (std::string line; std::getline(in, line);) lines.push_back(line);
      if (!lines.empty()) {
        lines.erase(lines.begin() +
                    static_cast<ptrdiff_t>(rng->NextBounded(lines.size())));
      }
      std::ostringstream joined;
      for (const std::string& line : lines) joined << line << "\n";
      out = joined.str();
      break;
    }
    default: {  // Duplicate one whole line somewhere else.
      std::vector<std::string> lines;
      std::istringstream in(out);
      for (std::string line; std::getline(in, line);) lines.push_back(line);
      if (!lines.empty()) {
        const std::string dup = lines[rng->NextBounded(lines.size())];
        lines.insert(lines.begin() +
                         static_cast<ptrdiff_t>(
                             rng->NextBounded(lines.size() + 1)),
                     dup);
      }
      std::ostringstream joined;
      for (const std::string& line : lines) joined << line << "\n";
      out = joined.str();
      break;
    }
  }
  return out;
}

/// Caps every digit run at three digits. Parsing materializes dataset keys,
/// so fuzzing the shipped specs verbatim would spend the whole budget
/// generating multi-hundred-thousand-key datasets thousands of times; the
/// parser's control flow does not depend on the magnitudes.
std::string ShrinkNumbers(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t digits = 0;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      if (++digits > 3) continue;
    } else {
      digits = 0;
    }
    out.push_back(c);
  }
  return out;
}

TEST(SpecFuzzTest, MutatedSpecsNeverCrashTheParser) {
  const int iterations = EnvFlagEnabled("LSBENCH_QUICK") ? 150 : 600;
  for (const char* file : kSpecFiles) {
    const std::string base = ShrinkNumbers(ReadSpecFile(file));
    for (int i = 0; i < iterations; ++i) {
      const uint64_t seed = 0xf022eedULL + static_cast<uint64_t>(i);
      Rng rng(seed);
      std::string mutated = base;
      // Stack 1-3 mutations so errors compound.
      const uint64_t rounds = 1 + rng.NextBounded(3);
      for (uint64_t r = 0; r < rounds; ++r) mutated = Mutate(mutated, &rng);

      const Result<RunSpec> parsed = ParseRunSpecText(mutated);
      if (!parsed.ok()) {
        // Errors must be real statuses with a message, never a crash.
        EXPECT_FALSE(parsed.status().ToString().empty())
            << file << " seed=" << seed;
        continue;
      }
      // A mutated spec that still parses must survive validation and
      // rendering without crashing (either outcome is acceptable).
      const Status valid = parsed.value().Validate();
      if (valid.ok()) {
        const Result<std::string> rendered =
            RenderRunSpecText(parsed.value());
        if (rendered.ok()) {
          const Result<RunSpec> reparsed = ParseRunSpecText(rendered.value());
          EXPECT_TRUE(reparsed.ok())
              << file << " seed=" << seed
              << ": rendered spec failed to re-parse: "
              << reparsed.status().ToString();
        }
      }
    }
  }
}

TEST(SpecFuzzTest, ServiceSectionValuesNeverCrashTheParser) {
  // Targeted fuzz of the [service] section: every key crossed with
  // adversarial values. Each outcome must be a parsed spec or an error
  // Status with a message — never a crash, never a silently-NaN field.
  const char* const kKeys[] = {"enabled", "queue_capacity", "policy",
                               "slo_p99_ms", "max_shed_fraction"};
  const char* const kValues[] = {
      "",     "0",    "-1",         "1",           "0.5",
      "nan",  "inf",  "-inf",       "1e309",       "true",
      "false", "yes", "drop_newest", "drop_oldest", "slo_shed",
      "banana", "4294967296", "-0.25", "99999999999999999999", "=",
  };
  for (const char* key : kKeys) {
    for (const char* value : kValues) {
      const std::string text = std::string("name = service_fuzz\n") +
                               "[dataset]\n"
                               "kind = uniform\n"
                               "num_keys = 100\n"
                               "seed = 1\n"
                               "[phase]\n"
                               "name = p\n"
                               "ops = 10\n"
                               "arrival = poisson\n"
                               "arrival_qps = 1000\n"
                               "[service]\n" +
                               key + " = " + value + "\n";
      const Result<RunSpec> parsed = ParseRunSpecText(text);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.status().ToString().empty())
            << key << " = " << value;
        continue;
      }
      const Status valid = parsed.value().Validate();
      if (!valid.ok()) continue;
      const Result<std::string> rendered = RenderRunSpecText(parsed.value());
      if (!rendered.ok()) continue;
      EXPECT_TRUE(ParseRunSpecText(rendered.value()).ok())
          << key << " = " << value << ": rendered spec failed to re-parse";
    }
  }
}

TEST(SpecFuzzTest, DriftSectionValuesNeverCrashTheParser) {
  // Targeted fuzz of the [drift] section: every key crossed with
  // adversarial values. Each outcome must be a parsed spec or an error
  // Status with a message — never a crash — and anything that parses,
  // validates, and renders must re-parse with the drift section intact.
  const char* const kKeys[] = {"trajectory", "tolerance", "sample_ops",
                               "seed"};
  const char* const kValues[] = {
      "",          "0",       "-1",        "1",
      "0.5",       "nan",     "inf",       "-inf",
      "1e309",     "banana",  "0.3, 0.8",  "0.3,0.8,",
      ",",         "0.3,,0.8", "1.5",      "0.0, -0.2",
      "4294967296",           "99999999999999999999",
      "0.1, 0.2, 0.3, 0.4, 0.5",           "=",
  };
  for (const char* key : kKeys) {
    for (const char* value : kValues) {
      const std::string text = std::string("name = drift_fuzz\n") +
                               "[dataset]\n"
                               "kind = uniform\n"
                               "num_keys = 100\n"
                               "seed = 1\n"
                               "[phase]\n"
                               "name = a\n"
                               "ops = 10\n"
                               "[phase]\n"
                               "name = b\n"
                               "ops = 10\n"
                               "[drift]\n" +
                               key + " = " + value + "\n";
      const Result<RunSpec> parsed = ParseRunSpecText(text);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.status().ToString().empty())
            << key << " = " << value;
        continue;
      }
      EXPECT_TRUE(parsed.value().drift.declared) << key << " = " << value;
      const Status valid = parsed.value().Validate();
      if (!valid.ok()) continue;
      const Result<std::string> rendered = RenderRunSpecText(parsed.value());
      if (!rendered.ok()) continue;
      const Result<RunSpec> reparsed = ParseRunSpecText(rendered.value());
      ASSERT_TRUE(reparsed.ok())
          << key << " = " << value << ": rendered spec failed to re-parse";
      // The drift section round-trips exactly.
      EXPECT_TRUE(parsed.value().drift == reparsed.value().drift)
          << key << " = " << value;
    }
  }
}

TEST(SpecFuzzTest, BatchKeysNeverCrashTheParser) {
  // Targeted fuzz of the batch grammar: batch_size and batch_mix crossed
  // with adversarial values. Each outcome must be a parsed spec or an error
  // Status with a message — never a crash — and anything that parses,
  // validates, and renders must re-parse.
  const char* const kKeys[] = {"batch_size", "batch_mix"};
  const char* const kValues[] = {
      "",          "0",           "1",          "4096",
      "4097",      "-1",          "0.5",        "nan",
      "inf",       "1e309",       "banana",     "4294967296",
      "99999999999999999999",     "batch_get:0.9,batch_put:0.1",
      "batch_get:1",              "batch_put:-0.5",
      "batch_get:nan",            "batch_get:0.9,batch_put",
      "get:0.9",                  "batch_get:0.9,,",
      "batch_get:inf",            ":",
  };
  for (const char* key : kKeys) {
    for (const char* value : kValues) {
      const std::string text = std::string("name = batch_fuzz\n") +
                               "[dataset]\n"
                               "kind = uniform\n"
                               "num_keys = 100\n"
                               "seed = 1\n"
                               "[phase]\n"
                               "name = p\n"
                               "ops = 10\n"
                               "batch_mix = batch_get:0.5\n" +
                               key + " = " + value + "\n";
      const Result<RunSpec> parsed = ParseRunSpecText(text);
      if (!parsed.ok()) {
        EXPECT_FALSE(parsed.status().ToString().empty())
            << key << " = " << value;
        continue;
      }
      const Status valid = parsed.value().Validate();
      if (!valid.ok()) continue;
      const Result<std::string> rendered = RenderRunSpecText(parsed.value());
      if (!rendered.ok()) continue;
      const Result<RunSpec> reparsed = ParseRunSpecText(rendered.value());
      ASSERT_TRUE(reparsed.ok())
          << key << " = " << value << ": rendered spec failed to re-parse";
      // The batch fields themselves round-trip exactly.
      ASSERT_EQ(parsed.value().phases.size(),
                reparsed.value().phases.size());
      for (size_t i = 0; i < parsed.value().phases.size(); ++i) {
        EXPECT_EQ(parsed.value().phases[i].batch_size,
                  reparsed.value().phases[i].batch_size)
            << key << " = " << value;
        EXPECT_EQ(parsed.value().phases[i].mix.batch_get,
                  reparsed.value().phases[i].mix.batch_get)
            << key << " = " << value;
        EXPECT_EQ(parsed.value().phases[i].mix.batch_put,
                  reparsed.value().phases[i].mix.batch_put)
            << key << " = " << value;
      }
    }
  }
}

}  // namespace
}  // namespace lsbench
