#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "util/clock.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing key");
  EXPECT_EQ(st.ToString(), "NotFound: missing key");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, TransientCodesAreExactlyTheRetriableOnes) {
  EXPECT_TRUE(Status::Timeout("x").IsTransient());
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsTransient());
  EXPECT_TRUE(IsTransientStatusCode(StatusCode::kTimeout));
  EXPECT_TRUE(IsTransientStatusCode(StatusCode::kUnavailable));
  EXPECT_TRUE(IsTransientStatusCode(StatusCode::kResourceExhausted));

  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::IoError("x").IsTransient());
  EXPECT_FALSE(IsTransientStatusCode(StatusCode::kOk));
  EXPECT_FALSE(IsTransientStatusCode(StatusCode::kInvalidArgument));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kTimeout), "Timeout");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  LSBENCH_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

Status UsesLegacyReturnNotOk(int x) {
  LSBENCH_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

Status CountingFallible(int* calls) {
  ++*calls;
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

TEST(StatusTest, LegacyReturnNotOkAliasStillWorks) {
  EXPECT_TRUE(UsesLegacyReturnNotOk(1).ok());
  EXPECT_TRUE(UsesLegacyReturnNotOk(-1).IsInvalidArgument());
}

TEST(StatusTest, ReturnIfErrorEvaluatesExpressionOnce) {
  int calls = 0;
  const Status st = [&]() -> Status {
    LSBENCH_RETURN_IF_ERROR(CountingFallible(&calls));
    return Status::OK();
  }();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(EnvTest, GetEnvReadsAndMisses) {
  ::setenv("LSBENCH_UTIL_TEST_VAR", "hello", 1);
  EXPECT_EQ(GetEnv("LSBENCH_UTIL_TEST_VAR").value_or(""), "hello");
  ::unsetenv("LSBENCH_UTIL_TEST_VAR");
  EXPECT_FALSE(GetEnv("LSBENCH_UTIL_TEST_VAR").has_value());
}

TEST(EnvTest, EnvFlagEnabledRequiresLeadingOne) {
  ::setenv("LSBENCH_UTIL_TEST_FLAG", "1", 1);
  EXPECT_TRUE(EnvFlagEnabled("LSBENCH_UTIL_TEST_FLAG"));
  ::setenv("LSBENCH_UTIL_TEST_FLAG", "0", 1);
  EXPECT_FALSE(EnvFlagEnabled("LSBENCH_UTIL_TEST_FLAG"));
  ::setenv("LSBENCH_UTIL_TEST_FLAG", "", 1);
  EXPECT_FALSE(EnvFlagEnabled("LSBENCH_UTIL_TEST_FLAG"));
  ::unsetenv("LSBENCH_UTIL_TEST_FLAG");
  EXPECT_FALSE(EnvFlagEnabled("LSBENCH_UTIL_TEST_FLAG"));
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.ok());
  const std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<std::vector<int>> UsesAssignOrReturn(int x) {
  LSBENCH_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  LSBENCH_ASSIGN_OR_RETURN(const int quarter, HalveEven(half));
  return std::vector<int>{half, quarter};
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  const Result<std::vector<int>> ok = UsesAssignOrReturn(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), (std::vector<int>{4, 2}));
  // Error at the first statement propagates.
  EXPECT_TRUE(UsesAssignOrReturn(3).status().IsInvalidArgument());
  // Error at the second statement propagates too.
  EXPECT_TRUE(UsesAssignOrReturn(6).status().IsInvalidArgument());
}

Result<std::string> MoveOnlyAssignOrReturn(bool fail) {
  auto make = [fail]() -> Result<std::unique_ptr<std::string>> {
    if (fail) return Status::NotFound("gone");
    return std::make_unique<std::string>("moved");
  };
  LSBENCH_ASSIGN_OR_RETURN(const std::unique_ptr<std::string> p, make());
  return *p;
}

TEST(ResultTest, AssignOrReturnHandlesMoveOnlyTypes) {
  const Result<std::string> ok = MoveOnlyAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "moved");
  EXPECT_TRUE(MoveOnlyAssignOrReturn(true).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversSmallRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianHasUnitMoments) {
  Rng rng(17);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialHasExpectedMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng base(23);
  Rng f1 = base.Fork(1);
  Rng f2 = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.Next() == f2.Next()) ++same;
  }
  EXPECT_LT(same, 3);
  // Forking is deterministic.
  Rng f1b = base.Fork(1);
  Rng f1c = base.Fork(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f1b.Next(), f1c.Next());
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.2) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

TEST(ClockTest, RealClockAdvances) {
  RealClock clock;
  const int64_t a = clock.NowNanos();
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  volatile double keep = sink;
  (void)keep;
  const int64_t b = clock.NowNanos();
  EXPECT_GE(b, a);
}

TEST(ClockTest, VirtualClockStartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowNanos(), 0);
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 500);
  clock.AdvanceSeconds(1.0);
  EXPECT_EQ(clock.NowNanos(), 1000000500);
  clock.SetNanos(2000000000);
  EXPECT_EQ(clock.NowNanos(), 2000000000);
}

TEST(ClockTest, StopwatchMeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch watch(&clock);
  clock.AdvanceNanos(1500);
  EXPECT_EQ(watch.ElapsedNanos(), 1500);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 1.5e-6);
  watch.Restart();
  EXPECT_EQ(watch.ElapsedNanos(), 0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_NEAR(h.Median(), 42.0, 42.0 * 0.06);
}

TEST(HistogramTest, QuantilesApproximateExactOnUniformData) {
  Histogram h;
  std::vector<double> exact;
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDoubleInRange(100.0, 10000.0);
    h.Record(v);
    exact.push_back(v);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const double approx = h.Quantile(q);
    const double truth =
        exact[static_cast<size_t>(q * static_cast<double>(exact.size() - 1))];
    EXPECT_NEAR(approx, truth, truth * 0.06) << "q=" << q;
  }
}

TEST(HistogramTest, MeanAndStdDevExact) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.0);
  EXPECT_NEAR(h.StdDev(), 2.0, 1e-9);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDoubleInRange(0, 1e6);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Summation order differs between the two paths: compare within ulps.
  EXPECT_NEAR(a.sum(), combined.sum(), combined.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_NEAR(a.Quantile(0.5), combined.Quantile(0.5), 1e-9);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(10);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Record(1.0);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, HumanCount) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1500), "1.50K");
  EXPECT_EQ(HumanCount(2500000), "2.50M");
  EXPECT_EQ(HumanCount(3100000000.0), "3.10B");
}

TEST(StringUtilTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(125), "125ns");
  EXPECT_EQ(HumanDuration(3200), "3.20us");
  EXPECT_EQ(HumanDuration(1500000), "1.50ms");
  EXPECT_EQ(HumanDuration(2300000000.0), "2.30s");
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts = {"a", "bb", "", "ccc"};
  const std::string joined = Join(parts, ",");
  EXPECT_EQ(joined, "a,bb,,ccc");
  EXPECT_EQ(Split(joined, ','), parts);
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("x", 3), "  x");
  EXPECT_EQ(PadRight("x", 3), "x  ");
  EXPECT_EQ(PadLeft("xyz", 2), "xyz");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, WritesSimpleRows) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"a", "b"});
  csv.WriteRow({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(&out);
  csv.WriteRow({"has,comma", "has\"quote", "has\nnewline"});
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvTest, ParseSimple) {
  const auto rows = ParseCsv("a,b\n1,2\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParseRejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"abc").ok());
}

TEST(CsvTest, RoundTripPreservesArbitraryFields) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with\"quote\""},
      {"", "multi\nline", "trailing "},
  };
  std::ostringstream out;
  CsvWriter csv(&out);
  for (const auto& row : rows) csv.WriteRow(row);
  const auto parsed = ParseCsv(out.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvTest, FieldFormatters) {
  EXPECT_EQ(CsvWriter::Field(static_cast<int64_t>(-12)), "-12");
  EXPECT_EQ(CsvWriter::Field(static_cast<uint64_t>(12)), "12");
  EXPECT_EQ(CsvWriter::Field(1.5), "1.5");
}

}  // namespace
}  // namespace lsbench
