// Open-loop service mode: AdmissionQueue policy semantics, an end-to-end
// overload run checked against a hand-computed schedule (constant arrivals
// make every admit/shed decision exactly predictable), byte-determinism of
// the demo spec at workers = 1 and 4, and the acceptance properties —
// under overload the coordinated-omission-correct response p99 dominates
// the service-time p99, and the shed fraction is nonzero but bounded.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/event_sink.h"
#include "core/service.h"
#include "core/spec_text.h"
#include "data/dataset.h"
#include "obs/observability.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

WorkloadStream::Issue MakeIssue(int64_t arrival_rel_nanos) {
  WorkloadStream::Issue issue;
  issue.op.type = OpType::kGet;
  issue.op.key = static_cast<uint64_t>(arrival_rel_nanos);
  issue.arrival_rel_nanos = arrival_rel_nanos;
  issue.open_loop = true;
  return issue;
}

// ---------------------------------------------------------------------------
// AdmissionQueue policy semantics.

TEST(AdmissionQueueTest, DropNewestShedsTheArrivalWhenFull) {
  ServiceSpec spec;
  spec.enabled = true;
  spec.queue_capacity = 2;
  spec.policy = OverloadPolicy::kDropNewest;
  AdmissionQueue queue(spec);

  EXPECT_TRUE(queue.Offer(MakeIssue(1), 10, false).admitted);
  EXPECT_TRUE(queue.Offer(MakeIssue(2), 10, false).admitted);
  const AdmissionQueue::Admission third = queue.Offer(MakeIssue(3), 10, false);
  EXPECT_FALSE(third.admitted);
  ASSERT_TRUE(third.shed.has_value());
  EXPECT_EQ(third.shed->arrival_rel_nanos, 3);  // The arrival itself.

  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.peak_depth(), 2u);
  EXPECT_EQ(queue.offered(), 3u);
  EXPECT_EQ(queue.admitted(), 2u);
  EXPECT_EQ(queue.shed(), 1u);
  // FIFO order survives the shed.
  EXPECT_EQ(queue.PopFront(20).arrival_rel_nanos, 1);
  EXPECT_EQ(queue.PopFront(20).arrival_rel_nanos, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(AdmissionQueueTest, DropOldestShedsTheHeadAndAdmitsTheArrival) {
  ServiceSpec spec;
  spec.enabled = true;
  spec.queue_capacity = 2;
  spec.policy = OverloadPolicy::kDropOldest;
  AdmissionQueue queue(spec);

  EXPECT_TRUE(queue.Offer(MakeIssue(1), 10, false).admitted);
  EXPECT_TRUE(queue.Offer(MakeIssue(2), 10, false).admitted);
  const AdmissionQueue::Admission third = queue.Offer(MakeIssue(3), 10, false);
  EXPECT_TRUE(third.admitted);
  ASSERT_TRUE(third.shed.has_value());
  EXPECT_EQ(third.shed->arrival_rel_nanos, 1);  // The old head.

  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.offered(), 3u);
  EXPECT_EQ(queue.admitted(), 3u);
  EXPECT_EQ(queue.shed(), 1u);
  EXPECT_EQ(queue.PopFront(20).arrival_rel_nanos, 2);
  EXPECT_EQ(queue.PopFront(20).arrival_rel_nanos, 3);
}

TEST(AdmissionQueueTest, SloShedPredictsQueueDelayFromServiceTime) {
  ServiceSpec spec;
  spec.enabled = true;
  spec.queue_capacity = 8;
  spec.policy = OverloadPolicy::kSloShed;
  spec.slo_p99_nanos = 1000000;  // 1 ms response target.
  spec.max_shed_fraction = 1.0;
  AdmissionQueue queue(spec);

  // No service-time estimate yet: the predictor has nothing to go on and
  // admits (predicted delay 0).
  EXPECT_TRUE(queue.Offer(MakeIssue(0), 0, false).admitted);
  (void)queue.PopFront(0);

  // Observed service time 2 ms: even an empty queue predicts a 2 ms wait,
  // past the 1 ms SLO — shed.
  queue.RecordServiceTime(2000000);
  const AdmissionQueue::Admission a = queue.Offer(MakeIssue(100), 100, false);
  EXPECT_FALSE(a.admitted);
  ASSERT_TRUE(a.shed.has_value());

  // The EMA decays toward fast completions (integer EMA, alpha = 1/4):
  // after enough 0.1 ms samples the predicted delay is back under the SLO.
  for (int i = 0; i < 32; ++i) queue.RecordServiceTime(100000);
  EXPECT_TRUE(queue.Offer(MakeIssue(200), 200, false).admitted);
}

TEST(AdmissionQueueTest, SloShedRespectsTheShedBudget) {
  ServiceSpec spec;
  spec.enabled = true;
  spec.queue_capacity = 2;
  spec.policy = OverloadPolicy::kSloShed;
  spec.slo_p99_nanos = 1000000;
  spec.max_shed_fraction = 0.0;  // No predictive sheds allowed.
  AdmissionQueue queue(spec);

  queue.RecordServiceTime(2000000);  // Predicts SLO misses everywhere.
  // Budget exhausted (zero): predictive shedding is suppressed, admits
  // proceed until the queue bound forces drops.
  EXPECT_TRUE(queue.Offer(MakeIssue(1), 0, false).admitted);
  EXPECT_TRUE(queue.Offer(MakeIssue(2), 0, false).admitted);
  // Full queue: the forced shed is exempt from the budget (the capacity
  // bound always holds).
  const AdmissionQueue::Admission forced = queue.Offer(MakeIssue(3), 0, false);
  EXPECT_FALSE(forced.admitted);
  EXPECT_TRUE(forced.shed.has_value());
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(AdmissionQueueTest, SloShedTightensWhileDegraded) {
  ServiceSpec spec;
  spec.enabled = true;
  spec.queue_capacity = 8;
  spec.policy = OverloadPolicy::kSloShed;
  spec.slo_p99_nanos = 1000;
  spec.max_shed_fraction = 1.0;
  AdmissionQueue queue(spec);

  // At now == deadline exactly (no service-time estimate, so the backlog
  // prediction is 0) healthy admission still accepts...
  EXPECT_TRUE(queue.Offer(MakeIssue(0), 1000, false).admitted);
  // ...but degraded mode sheds an arrival at/past its deadline outright.
  const AdmissionQueue::Admission late = queue.Offer(MakeIssue(0), 1000, true);
  EXPECT_FALSE(late.admitted);
  EXPECT_TRUE(late.shed.has_value());
  // A degraded arrival still inside its deadline is admitted.
  EXPECT_TRUE(queue.Offer(MakeIssue(6000), 6500, true).admitted);
}

// ---------------------------------------------------------------------------
// End-to-end overload run against a hand-computed schedule.

/// A SUT whose every Execute takes exactly 100 us of virtual time — twice
/// the 50 us interarrival step below, so the run is at 2x sustainable load.
class SlowSimSut final : public SystemUnderTest {
 public:
  explicit SlowSimSut(VirtualClock* clock) : clock_(clock) {}
  std::string name() const override { return "slow_sim"; }
  Status Load(const std::vector<KeyValue>& sorted_pairs) override {
    loaded_ = sorted_pairs.size();
    return Status::OK();
  }
  OpResult Execute(const Operation& op) override {
    (void)op;
    clock_->AdvanceNanos(100000);
    OpResult result;
    result.ok = true;
    return result;
  }
  SutStats GetStats() const override {
    SutStats stats;
    stats.memory_bytes = loaded_ * 16;
    return stats;
  }

 private:
  VirtualClock* clock_;
  size_t loaded_ = 0;
};

RunSpec MakeOverloadSpec() {
  RunSpec spec;
  spec.name = "service_overload_handcomputed";
  spec.seed = 7;
  DatasetOptions options;
  options.num_keys = 1000;
  options.seed = 7;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));

  PhaseSpec phase;
  phase.name = "overload";
  phase.dataset_index = 0;
  phase.mix.get = 1.0;
  phase.access = AccessPattern::kUniform;
  phase.arrival = ArrivalPattern::kConstant;
  phase.arrival_rate_qps = 20000.0;  // Exactly one arrival per 50 us.
  phase.num_operations = 400;
  spec.phases.push_back(phase);

  spec.service.enabled = true;
  spec.service.queue_capacity = 1;
  spec.service.policy = OverloadPolicy::kDropNewest;
  spec.interval_nanos = 10000000;
  spec.boxplot_sample_nanos = 1000000;
  spec.observability.metrics = true;
  return spec;
}

int64_t GaugeValue(const MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& [metric, value] : snapshot.gauges) {
    if (metric == name) return value;
  }
  return -1;
}

uint64_t CounterValue(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& [metric, value] : snapshot.counters) {
    if (metric == name) return value;
  }
  return 0;
}

TEST(ServiceModeTest, OverloadMatchesHandComputedSchedule) {
  // Constant arrivals every 50 us against a 100 us service time, queue
  // capacity 1, drop-newest. The schedule is exactly computable:
  //   arrival a_i = (i+1) * 50us. a_0 admits and executes (completes at
  //   a_0 + 100us). Every execution spans two arrival steps, so each cycle
  //   admits one due arrival and sheds the next: a_1, a_3, ..., a_399
  //   execute, a_2, a_4, ..., a_398 shed. 201 executed, 199 shed, and the
  //   queue never holds more than one operation.
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.virtual_service_nanos = 0;  // The SUT advances time itself.
  BenchmarkDriver driver(&clock, options);
  SlowSimSut sut(&clock);
  const RunSpec spec = MakeOverloadSpec();
  const Result<RunResult> result = driver.Run(spec, &sut);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunResult& run = result.value();

  ASSERT_EQ(run.events.size(), 400u);
  uint64_t shed = 0;
  for (const OpEvent& event : run.events) {
    EXPECT_TRUE(event.open_loop);
    if (event.queue_shed) {
      ++shed;
      EXPECT_TRUE(event.failed);
      // Sheds are decided the instant the arrival is due: zero response.
      EXPECT_EQ(event.latency_nanos, 0);
    } else {
      // Every executed operation spends exactly the SUT's 100 us in
      // service (timestamp - issue), and 150 us start-to-finish except
      // a_0, which never queues (100 us).
      EXPECT_EQ(event.timestamp_nanos - event.issue_nanos, 100000);
      EXPECT_TRUE(event.latency_nanos == 100000 ||
                  event.latency_nanos == 150000)
          << event.latency_nanos;
    }
  }
  EXPECT_EQ(shed, 199u);

  const ServiceMetrics& sm = run.metrics.service;
  EXPECT_TRUE(sm.enabled);
  EXPECT_EQ(sm.policy, "drop_newest");
  EXPECT_EQ(sm.open_loop_operations, 400u);
  EXPECT_EQ(sm.queue_shed_operations, 199u);
  EXPECT_DOUBLE_EQ(sm.shed_fraction, 199.0 / 400.0);
  EXPECT_TRUE(sm.shed_bound_met);  // Default bound is 1.0.
  EXPECT_EQ(sm.response_latency.count(), 201u);
  EXPECT_EQ(sm.service_latency.count(), 201u);
  // Coordinated omission made visible: response p99 (150 us, dominated by
  // queue wait) strictly exceeds service p99 (100 us). The log-bucketed
  // histogram has ~2% resolution, hence the loose band.
  EXPECT_GT(sm.response_latency.P99(), sm.service_latency.P99());
  EXPECT_NEAR(static_cast<double>(sm.service_latency.P99()), 100000.0,
              4000.0);
  EXPECT_NEAR(static_cast<double>(sm.response_latency.P99()), 150000.0,
              6000.0);

  // The queue instruments saw the same run: 201 admitted, 199 shed, and a
  // high-water depth of exactly one.
  const MetricsSnapshot& metrics = run.observability.metrics;
  EXPECT_EQ(CounterValue(metrics, "service.admitted"), 201u);
  EXPECT_EQ(CounterValue(metrics, "service.shed"), 199u);
  EXPECT_EQ(GaugeValue(metrics, "service.queue_peak_depth"), 1);
  EXPECT_EQ(GaugeValue(metrics, "service.queue_depth"), 0);
}

TEST(ServiceModeTest, ClosedLoopRunsReportNoOpenLoopOperations) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  SlowSimSut sut(&clock);
  RunSpec spec = MakeOverloadSpec();
  spec.name = "service_closed_loop_baseline";
  spec.service = ServiceSpec();  // Open-loop pacing, no admission queue.
  spec.phases[0].arrival = ArrivalPattern::kClosedLoop;
  spec.phases[0].arrival_rate_qps = 0.0;
  const Result<RunResult> result = driver.Run(spec, &sut);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().metrics.service.open_loop_operations, 0u);
  EXPECT_EQ(result.value().metrics.service.queue_shed_operations, 0u);
  EXPECT_FALSE(result.value().metrics.service.enabled);
}

// ---------------------------------------------------------------------------
// Demo spec: determinism and the overload acceptance properties.

RunSpec LoadServiceDemoSpec() {
  const std::string path =
      std::string(LSBENCH_SPEC_DIR) + "/service_overload_demo.lsb";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing spec file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<RunSpec> parsed = ParseRunSpecText(buffer.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

RunResult RunDemoOnce(uint32_t workers) {
  RunSpec spec = LoadServiceDemoSpec();
  spec.execution.workers = workers;
  spec.observability.trace = true;
  spec.observability.profile = true;
  spec.observability.metrics = true;

  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  LearnedSystemOptions sut_options;
  LearnedKvSystem sut(sut_options, &clock);
  Result<RunResult> result = driver.Run(spec, &sut);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

class ServiceDeterminismTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ServiceDeterminismTest, RepeatedDemoRunsAreByteIdentical) {
  const uint32_t workers = GetParam();
  const RunResult a = RunDemoOnce(workers);
  const RunResult b = RunDemoOnce(workers);
  EXPECT_EQ(SerializeEventStream(a.events), SerializeEventStream(b.events));
  EXPECT_EQ(RenderTraceFile(a.observability, a.run_name, a.sut_name, workers),
            RenderTraceFile(b.observability, b.run_name, b.sut_name, workers));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ServiceDeterminismTest,
                         ::testing::Values(1u, 4u));

TEST(ServiceModeTest, DemoSpecMeetsTheOverloadAcceptanceCriteria) {
  const RunResult run = RunDemoOnce(1);
  const ServiceMetrics& sm = run.metrics.service;
  ASSERT_TRUE(sm.enabled);
  ASSERT_GT(sm.open_loop_operations, 0u);

  // Overload sheds load — but stays inside the configured budget.
  EXPECT_GT(sm.queue_shed_operations, 0u);
  EXPECT_GT(sm.shed_fraction, 0.0);
  EXPECT_LE(sm.shed_fraction, sm.max_shed_fraction);
  EXPECT_TRUE(sm.shed_bound_met);

  // Coordinated omission correction: measuring from the intended arrival
  // can only add queueing delay, so the intended-arrival (response) p99
  // dominates the measured-issue (service) p99.
  EXPECT_GE(sm.response_latency.P99(), sm.service_latency.P99());

  // Overloaded at 8x sustainable: goodput saturates well below offered.
  EXPECT_GT(sm.offered_qps, sm.achieved_qps);

  // The run terminated cleanly *in degraded mode*: the fault storm tripped
  // the breaker at least once.
  EXPECT_GT(run.metrics.resilience.breaker_opens, 0u);
}

}  // namespace
}  // namespace lsbench
