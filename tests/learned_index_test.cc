#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/dataset.h"
#include "index/skiplist.h"
#include "index/sorted_array.h"
#include "learned/adaptive.h"
#include "learned/delta_buffer.h"
#include "stats/model.h"
#include "learned/pgm.h"
#include "learned/rmi.h"
#include "util/random.h"

namespace lsbench {
namespace {

std::vector<KeyValue> PairsFromDataset(const Dataset& ds) {
  std::vector<KeyValue> pairs;
  pairs.reserve(ds.keys.size());
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
  }
  return pairs;
}

// ---------------------------------------------------------------------------
// LinearModel / CdfModel
// ---------------------------------------------------------------------------

TEST(LinearModelTest, FitsExactLinearData) {
  std::vector<Key> keys;
  for (Key i = 0; i < 100; ++i) keys.push_back(1000 + i * 10);
  const LinearModel m = FitLinear(keys.data(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_NEAR(m.Predict(static_cast<double>(keys[i])),
                static_cast<double>(i), 1e-6);
  }
}

TEST(LinearModelTest, DegenerateInputs) {
  const LinearModel empty = FitLinear(nullptr, 0);
  EXPECT_EQ(empty.Predict(5.0), 0.0);
  const Key one = 42;
  const LinearModel single = FitLinear(&one, 1);
  EXPECT_EQ(single.Predict(42.0), 0.0);
}

TEST(LinearModelTest, PredictClampedStaysInBounds) {
  LinearModel m{1.0, -100.0};
  EXPECT_EQ(m.PredictClamped(0.0, 10), 0u);
  EXPECT_EQ(m.PredictClamped(1e9, 10), 9u);
  EXPECT_EQ(m.PredictClamped(105.0, 10), 5u);
  EXPECT_EQ(m.PredictClamped(5.0, 0), 0u);
}

TEST(LinearModelTest, LargeKeysStayWellConditioned) {
  std::vector<Key> keys;
  const Key base = Key{1} << 62;
  for (Key i = 0; i < 1000; ++i) keys.push_back(base + i * 1000);
  const LinearModel m = FitLinear(keys.data(), keys.size());
  for (size_t i = 0; i < keys.size(); i += 97) {
    EXPECT_NEAR(m.Predict(static_cast<double>(keys[i])),
                static_cast<double>(i), 1.0);
  }
}

TEST(CdfModelTest, MonotoneAndBounded) {
  Rng rng(77);
  std::vector<Key> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back(rng.Next() % 1000000);
  std::sort(sample.begin(), sample.end());
  const CdfModel cdf = CdfModel::FitFromSorted(sample, 64);
  double prev = -1.0;
  for (Key k = 0; k <= 1000000; k += 10000) {
    const double v = cdf.Evaluate(k);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(CdfModelTest, ApproximatesEmpiricalCdf) {
  std::vector<Key> sample;
  for (Key i = 0; i < 10000; ++i) sample.push_back(i * 100);
  const CdfModel cdf = CdfModel::FitFromSorted(sample, 128);
  EXPECT_NEAR(cdf.Evaluate(500000), 0.5, 0.02);
  EXPECT_NEAR(cdf.Evaluate(100000), 0.1, 0.02);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(999900), 1.0);
}

TEST(CdfModelTest, InverseRoundTrips) {
  std::vector<Key> sample;
  for (Key i = 0; i < 10000; ++i) sample.push_back(i * 100);
  const CdfModel cdf = CdfModel::FitFromSorted(sample, 128);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const Key k = cdf.EvaluateInverse(q);
    EXPECT_NEAR(cdf.Evaluate(k), q, 0.02);
  }
}

TEST(CdfModelTest, EmptySampleGivesDefault) {
  const CdfModel cdf = CdfModel::FitFromSorted({}, 8);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0), 0.0);
  EXPECT_GT(cdf.Evaluate(~Key{0}), 0.99);
}

// ---------------------------------------------------------------------------
// DeltaBuffer
// ---------------------------------------------------------------------------

TEST(DeltaBufferTest, LookupStates) {
  DeltaBuffer delta;
  Value v = 0;
  EXPECT_EQ(delta.Lookup(1, &v), DeltaBuffer::Presence::kAbsent);
  delta.Put(1, 10);
  EXPECT_EQ(delta.Lookup(1, &v), DeltaBuffer::Presence::kLive);
  EXPECT_EQ(v, 10u);
  delta.Delete(1);
  EXPECT_EQ(delta.Lookup(1, &v), DeltaBuffer::Presence::kTombstone);
}

TEST(DeltaBufferTest, MergeWithAppliesShadowsAndTombstones) {
  DeltaBuffer delta;
  delta.Put(2, 20);      // Overwrites static.
  delta.Put(5, 50);      // New key.
  delta.Delete(3);       // Removes static.
  delta.Delete(99);      // Tombstone for non-existent key: no effect.
  const std::vector<KeyValue> merged =
      delta.MergeWith({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  const std::vector<KeyValue> expected = {{1, 1}, {2, 20}, {4, 4}, {5, 50}};
  EXPECT_EQ(merged, expected);
}

TEST(DeltaBufferTest, MergeScanInterleaves) {
  DeltaBuffer delta;
  delta.Put(15, 150);
  delta.Delete(20);
  const std::vector<Key> keys = {10, 20, 30};
  const std::vector<Value> values = {1, 2, 3};
  std::vector<KeyValue> out;
  const size_t got = delta.MergeScan(keys, values, 0, 10, &out);
  EXPECT_EQ(got, 3u);
  const std::vector<KeyValue> expected = {{10, 1}, {15, 150}, {30, 3}};
  EXPECT_EQ(out, expected);
}

TEST(DeltaBufferTest, MergeScanRespectsFromAndLimit) {
  DeltaBuffer delta;
  delta.Put(25, 250);
  const std::vector<Key> keys = {10, 20, 30, 40};
  const std::vector<Value> values = {1, 2, 3, 4};
  std::vector<KeyValue> out;
  EXPECT_EQ(delta.MergeScan(keys, values, 21, 2, &out), 2u);
  const std::vector<KeyValue> expected = {{25, 250}, {30, 3}};
  EXPECT_EQ(out, expected);
}

// ---------------------------------------------------------------------------
// RMI
// ---------------------------------------------------------------------------

class RmiParamTest : public ::testing::TestWithParam<int> {};

TEST_P(RmiParamTest, FindsEveryKeyOnVariedDistributions) {
  const int num_models = GetParam();
  const std::vector<std::unique_ptr<UnitDistribution>> dists = [] {
    std::vector<std::unique_ptr<UnitDistribution>> d;
    d.push_back(MakeUniform());
    d.push_back(MakeLognormal(0.0, 1.5));
    d.push_back(MakeClustered(10, 0.01, 7));
    return d;
  }();
  for (const auto& dist : dists) {
    DatasetOptions options;
    options.num_keys = 20000;
    options.seed = 99;
    const Dataset ds = GenerateDataset(*dist, options);
    RmiOptions rmi_options;
    rmi_options.num_leaf_models = num_models;
    RmiIndex rmi(rmi_options);
    rmi.BulkLoad(PairsFromDataset(ds));
    for (size_t i = 0; i < ds.keys.size(); i += 37) {
      ASSERT_TRUE(rmi.Get(ds.keys[i]).has_value())
          << dist->name() << " models=" << num_models;
      EXPECT_EQ(*rmi.Get(ds.keys[i]), static_cast<Value>(i));
    }
    // Absent probes.
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      const Key probe = rng.Next() % ds.domain_max;
      const bool stored =
          std::binary_search(ds.keys.begin(), ds.keys.end(), probe);
      EXPECT_EQ(rmi.Get(probe).has_value(), stored);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ModelCounts, RmiParamTest,
                         ::testing::Values(1, 8, 64, 512));

TEST(RmiTest, MoreModelsTightenErrorBounds) {
  DatasetOptions options;
  options.num_keys = 50000;
  const Dataset ds = GenerateDataset(LognormalUnit(0.0, 2.0), options);
  RmiOptions few, many;
  few.num_leaf_models = 4;
  many.num_leaf_models = 1024;
  RmiIndex rmi_few(few), rmi_many(many);
  rmi_few.BulkLoad(PairsFromDataset(ds));
  rmi_many.BulkLoad(PairsFromDataset(ds));
  EXPECT_LT(rmi_many.MeanLeafError(), rmi_few.MeanLeafError());
}

TEST(RmiTest, DeltaInsertEraseRetrain) {
  Dataset ds = GenerateDataset(UniformUnit(), {10000, uint64_t{1} << 40, 3});
  RmiIndex rmi;
  rmi.BulkLoad(PairsFromDataset(ds));
  const size_t base = rmi.size();

  EXPECT_TRUE(rmi.Insert(ds.keys[10] + 1, 777));
  EXPECT_EQ(rmi.size(), base + 1);
  EXPECT_EQ(rmi.delta_size(), 1u);
  EXPECT_EQ(*rmi.Get(ds.keys[10] + 1), 777u);

  EXPECT_TRUE(rmi.Erase(ds.keys[20]));
  EXPECT_FALSE(rmi.Get(ds.keys[20]).has_value());
  EXPECT_EQ(rmi.size(), base);

  // Retrain folds the delta into the static part.
  rmi.Retrain();
  EXPECT_EQ(rmi.delta_size(), 0u);
  EXPECT_EQ(rmi.size(), base);
  EXPECT_EQ(*rmi.Get(ds.keys[10] + 1), 777u);
  EXPECT_FALSE(rmi.Get(ds.keys[20]).has_value());
}

TEST(RmiTest, TrainingSampleTradesAccuracy) {
  const Dataset ds =
      GenerateDataset(ClusteredUnit(30, 0.005, 11), {30000, uint64_t{1} << 40, 5});
  RmiOptions full, sampled;
  full.num_leaf_models = 64;
  sampled.num_leaf_models = 64;
  sampled.train_sample_every = 64;
  RmiIndex rmi_full(full), rmi_sampled(sampled);
  rmi_full.BulkLoad(PairsFromDataset(ds));
  rmi_sampled.BulkLoad(PairsFromDataset(ds));
  // Both stay correct (error bounds are exact regardless of sampling)...
  for (size_t i = 0; i < ds.keys.size(); i += 503) {
    ASSERT_TRUE(rmi_sampled.Get(ds.keys[i]).has_value());
    ASSERT_TRUE(rmi_full.Get(ds.keys[i]).has_value());
  }
  // ...and the cheap fit's error stays within a sane factor of the full
  // fit's. (Least squares minimizes *squared* error, so the subsampled fit
  // can occasionally have a smaller max error — no ordering is guaranteed.)
  EXPECT_LT(rmi_sampled.MeanLeafError(),
            rmi_full.MeanLeafError() * 50.0 + 50.0);
}

// ---------------------------------------------------------------------------
// PGM
// ---------------------------------------------------------------------------

class PgmParamTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PgmParamTest, FindsEveryKeyWithinEpsilon) {
  const uint32_t epsilon = GetParam();
  const Dataset ds = GenerateDataset(LognormalUnit(0.0, 1.0),
                                     {20000, uint64_t{1} << 44, 13});
  PgmIndex pgm(epsilon);
  pgm.BulkLoad(PairsFromDataset(ds));
  EXPECT_GT(pgm.segment_count(), 0u);
  for (size_t i = 0; i < ds.keys.size(); i += 29) {
    ASSERT_TRUE(pgm.Get(ds.keys[i]).has_value()) << "eps=" << epsilon;
    EXPECT_EQ(*pgm.Get(ds.keys[i]), static_cast<Value>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, PgmParamTest,
                         ::testing::Values(1u, 4u, 16u, 128u));

TEST(PgmTest, LargerEpsilonFewerSegments) {
  const Dataset ds = GenerateDataset(ClusteredUnit(50, 0.002, 17),
                                     {40000, uint64_t{1} << 44, 19});
  PgmIndex tight(4), loose(256);
  tight.BulkLoad(PairsFromDataset(ds));
  loose.BulkLoad(PairsFromDataset(ds));
  EXPECT_GT(tight.segment_count(), loose.segment_count());
}

TEST(PgmTest, PerfectlyLinearDataNeedsOneSegment) {
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 10000; ++i) pairs.emplace_back(i * 64, i);
  PgmIndex pgm(8);
  pgm.BulkLoad(pairs);
  EXPECT_EQ(pgm.segment_count(), 1u);
}

TEST(PgmTest, SurvivesDoublePrecisionCollapse) {
  // Near 2^63 the double ULP is 2048, so adjacent uint64 keys convert to
  // the *same* double. The cone must break segments there, not die.
  std::vector<KeyValue> pairs;
  const Key base = Key{1} << 63;
  for (Key i = 0; i < 5000; ++i) pairs.emplace_back(base + i * 3, i);
  PgmIndex pgm(8);
  pgm.BulkLoad(pairs);
  for (Key i = 0; i < 5000; i += 13) {
    ASSERT_TRUE(pgm.Get(base + i * 3).has_value()) << i;
    EXPECT_EQ(*pgm.Get(base + i * 3), i);
  }
  EXPECT_FALSE(pgm.Get(base + 1).has_value());
}

TEST(PgmTest, DeltaOperations) {
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 1000; ++i) pairs.emplace_back(i * 10, i);
  PgmIndex pgm(8);
  pgm.BulkLoad(pairs);
  EXPECT_TRUE(pgm.Insert(5, 500));
  EXPECT_FALSE(pgm.Insert(10, 600));  // Overwrite of static key.
  EXPECT_EQ(*pgm.Get(10), 600u);
  EXPECT_TRUE(pgm.Erase(20));
  EXPECT_EQ(pgm.size(), 1000u);  // 1000 + 1 insert - 1 erase (overwrite is neutral).
  pgm.Retrain();
  EXPECT_EQ(pgm.delta_size(), 0u);
  EXPECT_EQ(*pgm.Get(5), 500u);
  EXPECT_EQ(*pgm.Get(10), 600u);
  EXPECT_FALSE(pgm.Get(20).has_value());
}

// ---------------------------------------------------------------------------
// AdaptiveLearnedIndex
// ---------------------------------------------------------------------------

TEST(AdaptiveTest, SplitsUnderInsertPressure) {
  AdaptiveOptions options;
  options.max_segment_entries = 128;
  AdaptiveLearnedIndex alex(options);
  for (Key i = 0; i < 5000; ++i) {
    alex.Insert(i * 3, i);
  }
  alex.CheckInvariants();
  EXPECT_GT(alex.segment_count(), 1u);
  EXPECT_GT(alex.retrain_count(), 0u);
  EXPECT_GT(alex.retrain_work(), 0u);
  for (Key i = 0; i < 5000; i += 61) {
    ASSERT_TRUE(alex.Get(i * 3).has_value());
  }
}

TEST(AdaptiveTest, SkewedInsertBurstStaysCorrect) {
  AdaptiveOptions options;
  options.max_segment_entries = 256;
  AdaptiveLearnedIndex alex(options);
  // Bulk load uniform, then hammer one region (distribution shift).
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 10000; ++i) pairs.emplace_back(i * 1000, i);
  alex.BulkLoad(pairs);
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    const Key key = 5000000 + rng.NextBounded(100000);  // Hot region.
    alex.Insert(key, i);
  }
  alex.CheckInvariants();
  // Everything loaded and inserted is still findable.
  for (Key i = 0; i < 10000; i += 101) {
    ASSERT_TRUE(alex.Get(i * 1000).has_value());
  }
}

TEST(AdaptiveTest, EraseDrainsSegments) {
  AdaptiveOptions options;
  options.max_segment_entries = 64;
  AdaptiveLearnedIndex alex(options);
  for (Key i = 0; i < 1000; ++i) alex.Insert(i, i);
  const size_t segments_before = alex.segment_count();
  for (Key i = 0; i < 1000; ++i) EXPECT_TRUE(alex.Erase(i));
  EXPECT_EQ(alex.size(), 0u);
  EXPECT_LE(alex.segment_count(), segments_before);
  alex.CheckInvariants();
  // Still usable after draining.
  EXPECT_TRUE(alex.Insert(5, 5));
  EXPECT_EQ(*alex.Get(5), 5u);
}

// ---------------------------------------------------------------------------
// SkipList / SortedArray specifics
// ---------------------------------------------------------------------------

TEST(SkipListTest, InvariantsUnderRandomOps) {
  SkipList list;
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    const Key key = rng.NextBounded(2000);
    if (rng.NextBool(0.7)) {
      list.Insert(key, key);
    } else {
      list.Erase(key);
    }
  }
  list.CheckInvariants();
}

TEST(SortedArrayTest, InterpolationMatchesBinaryOnSkewedData) {
  const Dataset ds = GenerateDataset(ParetoUnit(1.2),
                                     {20000, uint64_t{1} << 40, 31});
  SortedArrayIndex binary(SortedArrayIndex::SearchMode::kBinary);
  SortedArrayIndex interp(SortedArrayIndex::SearchMode::kInterpolation);
  binary.BulkLoad(PairsFromDataset(ds));
  interp.BulkLoad(PairsFromDataset(ds));
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    const Key probe = rng.Next() % ds.domain_max;
    EXPECT_EQ(binary.Get(probe).has_value(), interp.Get(probe).has_value());
  }
  for (size_t i = 0; i < ds.keys.size(); i += 97) {
    EXPECT_EQ(*interp.Get(ds.keys[i]), static_cast<Value>(i));
  }
}

}  // namespace
}  // namespace lsbench
