#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "index/bloom.h"
#include "index/lsm.h"
#include "util/random.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// BloomFilter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(10000, 10);
  Rng rng(1);
  std::vector<Key> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(rng.Next());
  for (Key k : keys) bloom.Add(k);
  for (Key k : keys) EXPECT_TRUE(bloom.MayContain(k));
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
  BloomFilter bloom(10000, 10);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) bloom.Add(rng.Next());
  int false_positives = 0;
  const int probes = 100000;
  Rng probe_rng(3);  // Different stream: collisions are negligible.
  for (int i = 0; i < probes; ++i) {
    if (bloom.MayContain(probe_rng.Next())) ++false_positives;
  }
  // 10 bits/key with 7 probes: theoretical ~0.8%; allow generous slack.
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.03);
  EXPECT_GT(false_positives, 0);  // A Bloom filter does have some.
}

TEST(BloomFilterTest, FillRatioNearHalfAtOptimalProbes) {
  BloomFilter bloom(5000, 10);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) bloom.Add(rng.Next());
  EXPECT_NEAR(bloom.FillRatio(), 0.5, 0.05);
}

TEST(BloomFilterTest, MoreBitsFewerFalsePositives) {
  auto fp_rate = [](int bits_per_key) {
    BloomFilter bloom(5000, bits_per_key);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) bloom.Add(rng.Next());
    Rng probe_rng(6);
    int fp = 0;
    for (int i = 0; i < 50000; ++i) {
      if (bloom.MayContain(probe_rng.Next())) ++fp;
    }
    return static_cast<double>(fp);
  };
  EXPECT_GT(fp_rate(4), fp_rate(16));
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  const BloomFilter bloom(100, 10);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(bloom.MayContain(rng.Next()));
}

// ---------------------------------------------------------------------------
// LsmTree
// ---------------------------------------------------------------------------

LsmOptions SmallLsm() {
  LsmOptions options;
  options.memtable_limit = 64;
  options.level_size_ratio = 4;
  return options;
}

TEST(LsmTest, BasicOps) {
  LsmTree lsm(SmallLsm());
  EXPECT_TRUE(lsm.Insert(10, 100));
  EXPECT_FALSE(lsm.Insert(10, 200));  // Overwrite.
  EXPECT_EQ(lsm.size(), 1u);
  EXPECT_EQ(*lsm.Get(10), 200u);
  EXPECT_TRUE(lsm.Erase(10));
  EXPECT_FALSE(lsm.Erase(10));
  EXPECT_FALSE(lsm.Get(10).has_value());
  EXPECT_EQ(lsm.size(), 0u);
}

TEST(LsmTest, FlushesAndCompactsUnderLoad) {
  LsmTree lsm(SmallLsm());
  for (Key i = 0; i < 5000; ++i) lsm.Insert(i, i);
  EXPECT_GT(lsm.compaction_count(), 0u);
  EXPECT_GT(lsm.level_count(), 1u);
  EXPECT_LT(lsm.memtable_size(), 64u);
  lsm.CheckInvariants();
  for (Key i = 0; i < 5000; i += 37) {
    ASSERT_TRUE(lsm.Get(i).has_value()) << i;
    EXPECT_EQ(*lsm.Get(i), i);
  }
}

TEST(LsmTest, TombstonesMaskDeeperVersions) {
  LsmTree lsm(SmallLsm());
  // Push key 5 deep via many flushes, then delete it.
  lsm.Insert(5, 55);
  for (Key i = 1000; i < 2000; ++i) lsm.Insert(i, i);
  ASSERT_TRUE(lsm.Get(5).has_value());
  EXPECT_TRUE(lsm.Erase(5));
  EXPECT_FALSE(lsm.Get(5).has_value());
  // Scans also honor the tombstone.
  std::vector<KeyValue> out;
  lsm.Scan(0, 10, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_NE(out.front().first, 5u);
  lsm.CheckInvariants();
}

TEST(LsmTest, ScanMergesAllSources) {
  LsmTree lsm(SmallLsm());
  // Interleave so data lands in multiple levels + memtable.
  for (Key i = 0; i < 3000; i += 3) lsm.Insert(i, i);
  for (Key i = 1; i < 3000; i += 3) lsm.Insert(i, i);
  for (Key i = 2; i < 3000; i += 3) lsm.Insert(i, i);
  std::vector<KeyValue> out;
  EXPECT_EQ(lsm.Scan(0, 3000, &out), 3000u);
  for (Key i = 0; i < 3000; ++i) {
    EXPECT_EQ(out[i].first, i);
    EXPECT_EQ(out[i].second, i);
  }
}

TEST(LsmTest, BulkLoadPlacesBottomRun) {
  LsmTree lsm(SmallLsm());
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 10000; ++i) pairs.emplace_back(i * 2, i);
  lsm.BulkLoad(pairs);
  EXPECT_EQ(lsm.size(), 10000u);
  EXPECT_EQ(lsm.compaction_count(), 0u);  // Direct placement, no compaction.
  lsm.CheckInvariants();
  EXPECT_EQ(*lsm.Get(19998), 9999u);
  EXPECT_FALSE(lsm.Get(19999).has_value());
}

TEST(LsmTest, DifferentialAgainstStdMap) {
  LsmTree lsm(SmallLsm());
  std::map<Key, Value> reference;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const Key key = rng.NextBounded(2000);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        const Value value = rng.Next();
        const bool fresh = reference.find(key) == reference.end();
        EXPECT_EQ(lsm.Insert(key, value), fresh);
        reference[key] = value;
        break;
      }
      case 2: {
        const bool existed = reference.erase(key) > 0;
        EXPECT_EQ(lsm.Erase(key), existed);
        break;
      }
      default: {
        const auto it = reference.find(key);
        const auto got = lsm.Get(key);
        if (it == reference.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it->second);
        }
      }
    }
    if (i % 5000 == 0) lsm.CheckInvariants();
  }
  lsm.CheckInvariants();
  EXPECT_EQ(lsm.size(), reference.size());
  std::vector<KeyValue> all;
  lsm.Scan(0, reference.size() + 10, &all);
  ASSERT_EQ(all.size(), reference.size());
  auto it = reference.begin();
  for (const auto& [k, v] : all) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(LsmTest, BloomFiltersPruneAbsentLookups) {
  LsmTree lsm(SmallLsm());
  for (Key i = 0; i < 5000; ++i) lsm.Insert(i * 1000, i);
  const uint64_t before = lsm.bloom_negative_count();
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    lsm.Get(rng.Next());  // Essentially always absent.
  }
  EXPECT_GT(lsm.bloom_negative_count(), before + 500);
}

// ---------------------------------------------------------------------------
// Learned runs (Bourbon-style)
// ---------------------------------------------------------------------------

LsmOptions LearnedLsm() {
  LsmOptions options = SmallLsm();
  options.learned_runs = true;
  options.learned_epsilon = 8;
  return options;
}

TEST(LearnedLsmTest, BuildsModelsAndAnswersCorrectly) {
  LsmTree lsm(LearnedLsm());
  std::vector<KeyValue> pairs;
  for (Key i = 0; i < 20000; ++i) pairs.emplace_back(i * 7, i);
  lsm.BulkLoad(pairs);
  EXPECT_GT(lsm.ModelSegments(), 0u);
  EXPECT_EQ(lsm.name(), "lsm_learned");
  for (Key i = 0; i < 20000; i += 97) {
    ASSERT_TRUE(lsm.Get(i * 7).has_value());
    EXPECT_EQ(*lsm.Get(i * 7), i);
    EXPECT_FALSE(lsm.Get(i * 7 + 1).has_value());
  }
}

TEST(LearnedLsmTest, ModelsSurviveCompactions) {
  LsmTree learned(LearnedLsm());
  LsmTree plain(SmallLsm());
  Rng rng(17);
  for (int i = 0; i < 15000; ++i) {
    const Key key = rng.NextBounded(5000);
    if (rng.NextBool(0.8)) {
      const Value value = rng.Next();
      learned.Insert(key, value);
      plain.Insert(key, value);
    } else {
      learned.Erase(key);
      plain.Erase(key);
    }
  }
  learned.CheckInvariants();
  EXPECT_EQ(learned.size(), plain.size());
  // Both engines agree on every probe.
  for (Key key = 0; key < 5000; key += 7) {
    const auto a = learned.Get(key);
    const auto b = plain.Get(key);
    EXPECT_EQ(a.has_value(), b.has_value()) << key;
    if (a.has_value()) {
      EXPECT_EQ(*a, *b);
    }
  }
}

// ---------------------------------------------------------------------------
// SegmentModel
// ---------------------------------------------------------------------------

TEST(SegmentModelTest, WindowContainsEveryPresentKey) {
  Rng rng(23);
  std::vector<Key> keys;
  Key k = 0;
  for (int i = 0; i < 50000; ++i) {
    k += 1 + rng.NextBounded(1000);
    keys.push_back(k);
  }
  SegmentModel model;
  model.Build(keys.data(), keys.size(), 16);
  EXPECT_GT(model.segment_count(), 0u);
  // Membership guarantee: every present key's true position is inside its
  // window, and windows are bounded by 2*eps+1.
  for (size_t i = 0; i < keys.size(); i += 11) {
    const auto [lo, hi] = model.WindowFor(keys[i]);
    ASSERT_LE(hi - lo, 2u * 16 + 1);
    EXPECT_GE(i, lo);
    EXPECT_LT(i, hi);
  }
  // Absent probes still get bounded windows (content unspecified).
  for (int i = 0; i < 1000; ++i) {
    const auto [lo, hi] = model.WindowFor(rng.NextBounded(k + 1000));
    EXPECT_LE(hi - lo, 2u * 16 + 1);
    EXPECT_LE(hi, keys.size());
  }
}

TEST(SegmentModelTest, EmptyAndSingle) {
  SegmentModel model;
  EXPECT_TRUE(model.empty());
  const Key one = 42;
  model.Build(&one, 1, 4);
  const auto [lo, hi] = model.WindowFor(42);
  EXPECT_EQ(lo, 0u);
  EXPECT_GE(hi, 1u);
}

TEST(LsmTest, CompactionWorkTracksWriteAmplification) {
  LsmTree lsm(SmallLsm());
  for (Key i = 0; i < 20000; ++i) lsm.Insert(i, i);
  // Leveled compaction rewrites entries multiple times: work > inserts.
  EXPECT_GT(lsm.compaction_work(), 20000u);
}

}  // namespace
}  // namespace lsbench
