#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "data/dataset.h"
#include "data/io.h"
#include "util/key_value.h"

namespace lsbench {
namespace {

class DataIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& suffix) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "lsbench_" + info->name() + suffix;
  }

  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }

  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

TEST_F(DataIoTest, BinaryRoundTrip) {
  DatasetOptions options;
  options.num_keys = 5000;
  const Dataset ds = GenerateDataset(LognormalUnit(0, 1), options);
  const std::string path = Track(TempPath(".bin"));
  ASSERT_TRUE(SaveKeysBinary(ds, path).ok());

  const Result<Dataset> loaded = LoadKeysBinary(path, "reload");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().keys, ds.keys);
  EXPECT_EQ(loaded.value().name, "reload");
}

TEST_F(DataIoTest, BinaryRejectsUnsorted) {
  Dataset bad;
  bad.keys = {5, 3, 7};
  const std::string path = Track(TempPath(".bin"));
  ASSERT_TRUE(SaveKeysBinary(bad, path).ok());
  EXPECT_TRUE(LoadKeysBinary(path, "x").status().IsInvalidArgument());
}

TEST_F(DataIoTest, BinaryRejectsTruncated) {
  const std::string path = Track(TempPath(".bin"));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t claimed = 100;  // But write no keys.
  std::fwrite(&claimed, sizeof(claimed), 1, f);
  std::fclose(f);
  EXPECT_TRUE(LoadKeysBinary(path, "x").status().IsIoError());
}

TEST_F(DataIoTest, BinaryMissingFile) {
  EXPECT_TRUE(LoadKeysBinary("/nonexistent/no.bin", "x").status().IsIoError());
}

TEST_F(DataIoTest, BinaryEmptyDataset) {
  Dataset empty;
  const std::string path = Track(TempPath(".bin"));
  ASSERT_TRUE(SaveKeysBinary(empty, path).ok());
  const Result<Dataset> loaded = LoadKeysBinary(path, "empty");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().keys.empty());
}

TEST_F(DataIoTest, CsvRoundTrip) {
  DatasetOptions options;
  options.num_keys = 1000;
  const Dataset ds = GenerateDataset(UniformUnit(), options);
  const std::string path = Track(TempPath(".csv"));
  ASSERT_TRUE(SaveKeysCsv(ds, path).ok());
  const Result<Dataset> loaded = LoadKeysCsv(path, "csv_reload");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().keys, ds.keys);
}

TEST_F(DataIoTest, CsvSortsAndDeduplicates) {
  const std::string path = Track(TempPath(".csv"));
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("9\n3\n3\n1\n", f);  // No header, unsorted, duplicate.
  std::fclose(f);
  const Result<Dataset> loaded = LoadKeysCsv(path, "x");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().keys, (std::vector<Key>{1, 3, 9}));
}

TEST_F(DataIoTest, CsvRejectsGarbage) {
  const std::string path = Track(TempPath(".csv"));
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("key\nabc\n", f);
  std::fclose(f);
  EXPECT_TRUE(LoadKeysCsv(path, "x").status().IsInvalidArgument());
}

}  // namespace
}  // namespace lsbench
