// Runtime ground truth for lsbench-deepcheck's hot-alloc claim: counts
// every global operator new during two simulated runs that differ only in
// operation count, and asserts the marginal allocations per additional
// operation stay within the pinned budget (LSBENCH_PER_OP_HEAP_ALLOCS,
// injected by CMake from tools/lint/hotpath_budget.json — the same file the
// static checker cross-checks its baseline against).
//
// The workload is read-only so the SUT performs no inserts of its own: the
// measured loop's steady state (generate -> pace -> execute -> record) is
// exactly what the static rule audits, and with the event/trace/key arenas
// reserved up front the marginal cost per op must be zero heap calls. The
// absolute slack term absorbs O(log n) container regrowth in post-run
// metrics, which scales with run size but not per operation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/driver.h"
#include "core/run_spec.h"
#include "data/dataset.h"
#include "sut/systems.h"

namespace {

std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace lsbench {
namespace {

RunSpec MakeReadOnlySpec(uint64_t num_operations) {
  RunSpec spec;
  spec.name = "hotpath_alloc_" + std::to_string(num_operations);
  spec.seed = 7;
  DatasetOptions options;
  options.num_keys = 4000;
  options.seed = 7;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));

  PhaseSpec phase;
  phase.name = "read_only";
  phase.dataset_index = 0;
  phase.mix = OperationMix{};  // get = 1.0, everything else 0.
  phase.num_operations = num_operations;
  spec.phases.push_back(phase);
  spec.interval_nanos = 100000000;  // 100 ms.
  return spec;
}

uint64_t HeapAllocsForRun(uint64_t num_operations) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.virtual_service_nanos = 100000;  // 100 us per op.
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  const RunSpec spec = MakeReadOnlySpec(num_operations);

  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  const Result<RunResult> result = driver.Run(spec, &sut);
  const uint64_t used = g_heap_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().events.size(), num_operations);
  return used;
}

TEST(HotpathAllocTest, MarginalAllocationsPerOpWithinBudget) {
  constexpr uint64_t kOps = 4000;
  // First run also warms whatever process-lifetime lazy state the driver
  // touches; the comparison below is between two equally-warm runs.
  (void)HeapAllocsForRun(kOps);

  const uint64_t base = HeapAllocsForRun(kOps);
  const uint64_t doubled = HeapAllocsForRun(2 * kOps);
  ASSERT_GE(doubled, base);
  const uint64_t marginal = doubled - base;

  // Container regrowth in post-run merge/metrics is O(log n) allocation
  // calls regardless of op count; 96 absolute calls of slack covers it
  // with room while still failing loudly on any real per-op allocation
  // (which would cost kOps extra calls at minimum).
  constexpr uint64_t kSlack = 96;
  constexpr uint64_t kBudget = LSBENCH_PER_OP_HEAP_ALLOCS;
  EXPECT_LE(marginal, kBudget * kOps + kSlack)
      << "marginal heap allocations for " << kOps << " extra ops: "
      << marginal << " (per-op budget " << kBudget << ", slack " << kSlack
      << ") — the hot path regressed to allocating per operation; run "
      << "tools/lint/deepcheck.py to find the new call path";
}

}  // namespace
}  // namespace lsbench
