// Runtime ground truth for lsbench-deepcheck's hot-alloc claim: counts
// every global operator new during two simulated runs that differ only in
// operation count, and asserts the marginal allocations per additional
// operation stay within the pinned budget (LSBENCH_PER_OP_HEAP_ALLOCS,
// injected by CMake from tools/lint/hotpath_budget.json — the same file the
// static checker cross-checks its baseline against).
//
// The workload is read-only so the SUT performs no inserts of its own: the
// measured loop's steady state (generate -> pace -> execute -> record) is
// exactly what the static rule audits, and with the event/trace/key arenas
// reserved up front the marginal cost per op must be zero heap calls. The
// absolute slack term absorbs O(log n) container regrowth in post-run
// metrics, which scales with run size but not per operation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/driver.h"
#include "core/run_spec.h"
#include "data/dataset.h"
#include "sut/systems.h"

namespace {

std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace lsbench {
namespace {

RunSpec MakeReadOnlySpec(uint64_t num_operations) {
  RunSpec spec;
  spec.name = "hotpath_alloc_" + std::to_string(num_operations);
  spec.seed = 7;
  DatasetOptions options;
  options.num_keys = 4000;
  options.seed = 7;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));

  PhaseSpec phase;
  phase.name = "read_only";
  phase.dataset_index = 0;
  phase.mix = OperationMix{};  // get = 1.0, everything else 0.
  phase.num_operations = num_operations;
  spec.phases.push_back(phase);
  spec.interval_nanos = 100000000;  // 100 ms.
  return spec;
}

/// Batch analogue of MakeReadOnlySpec: the same element count driven as
/// kBatchGet request units of `batch_size` keys through the monomorphized
/// batch loop (one event per element, so the arenas see the same load).
RunSpec MakeBatchReadOnlySpec(uint64_t num_elements, uint32_t batch_size) {
  RunSpec spec = MakeReadOnlySpec(num_elements);
  spec.name = "hotpath_alloc_batch_" + std::to_string(num_elements);
  PhaseSpec& phase = spec.phases[0];
  phase.mix.get = 0.0;
  phase.mix.batch_get = 1.0;
  phase.batch_size = batch_size;
  phase.num_operations = num_elements / batch_size;
  return spec;
}

uint64_t HeapAllocsForSpec(const RunSpec& spec, uint64_t expected_events) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.virtual_service_nanos = 100000;  // 100 us per op.
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;

  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  const Result<RunResult> result = driver.Run(spec, &sut);
  const uint64_t used = g_heap_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().events.size(), expected_events);
  return used;
}

uint64_t HeapAllocsForRun(uint64_t num_operations) {
  return HeapAllocsForSpec(MakeReadOnlySpec(num_operations), num_operations);
}

TEST(HotpathAllocTest, MarginalAllocationsPerOpWithinBudget) {
  constexpr uint64_t kOps = 4000;
  // First run also warms whatever process-lifetime lazy state the driver
  // touches; the comparison below is between two equally-warm runs.
  (void)HeapAllocsForRun(kOps);

  const uint64_t base = HeapAllocsForRun(kOps);
  const uint64_t doubled = HeapAllocsForRun(2 * kOps);
  ASSERT_GE(doubled, base);
  const uint64_t marginal = doubled - base;

  // Container regrowth in post-run merge/metrics is O(log n) allocation
  // calls regardless of op count; 96 absolute calls of slack covers it
  // with room while still failing loudly on any real per-op allocation
  // (which would cost kOps extra calls at minimum).
  constexpr uint64_t kSlack = 96;
  constexpr uint64_t kBudget = LSBENCH_PER_OP_HEAP_ALLOCS;
  EXPECT_LE(marginal, kBudget * kOps + kSlack)
      << "marginal heap allocations for " << kOps << " extra ops: "
      << marginal << " (per-op budget " << kBudget << ", slack " << kSlack
      << ") — the hot path regressed to allocating per operation; run "
      << "tools/lint/deepcheck.py to find the new call path";
}

TEST(HotpathAllocTest, BatchSteadyStateAllocatesZeroPerElement) {
  // The batch loop's steady state (draw ranks into the pre-sized scratch,
  // fill the key ring, one ExecuteBatch, bulk-record into the event arena)
  // must be exactly as allocation-free as the scalar loop: zero marginal
  // heap calls per additional *element*, pinned with the same
  // doubled-run-minus-base technique as the scalar test.
  constexpr uint64_t kElements = 4096;
  constexpr uint32_t kBatchSize = 64;
  (void)HeapAllocsForSpec(MakeBatchReadOnlySpec(kElements, kBatchSize),
                          kElements);

  const uint64_t base = HeapAllocsForSpec(
      MakeBatchReadOnlySpec(kElements, kBatchSize), kElements);
  const uint64_t doubled = HeapAllocsForSpec(
      MakeBatchReadOnlySpec(2 * kElements, kBatchSize), 2 * kElements);
  ASSERT_GE(doubled, base);
  const uint64_t marginal = doubled - base;

  constexpr uint64_t kSlack = 96;
  EXPECT_LE(marginal, kSlack)
      << "marginal heap allocations for " << kElements
      << " extra batch elements: " << marginal << " (slack " << kSlack
      << ") — the batch hot path regressed to allocating in steady state; "
      << "run tools/lint/deepcheck.py to find the new call path";
}

}  // namespace
}  // namespace lsbench
