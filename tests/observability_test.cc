// Unit tests for the observability layer: tracer shard merging, the metrics
// registry, fixed-bucket histogram merge edge cases (empty shards,
// single-sample shards, saturated buckets, mismatched layouts), and the
// per-phase stage-time breakdown merge.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/observability.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Tracer + trace merge
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(0);
  EXPECT_FALSE(tracer.enabled());
  tracer.Record("x", 0, 1);
  { ScopedSpan span(&tracer, "y"); }
  { ScopedSpan span(nullptr, "z"); }
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TracerTest, BoundTracerStampsProvenance) {
  VirtualClock clock;
  clock.SetNanos(1000);
  Tracer tracer(3);
  tracer.Bind(&clock, 1000);
  tracer.set_phase(2);
  {
    ScopedSpan span(&tracer, "work");
    clock.AdvanceNanos(500);
  }
  TraceStream spans = tracer.TakeSpans();
  ASSERT_EQ(spans.size(), 1u);
  const TraceSpan& span = spans[0];
  EXPECT_STREQ(span.name, "work");
  EXPECT_EQ(span.start_nanos, 0);
  EXPECT_EQ(span.end_nanos, 500);
  EXPECT_EQ(span.phase, 2);
  EXPECT_EQ(span.worker, 3u);
  EXPECT_EQ(span.seq, 0u);
}

TraceSpan MakeSpan(int64_t start, uint32_t worker, uint64_t seq) {
  TraceSpan span;
  span.name = "s";
  span.start_nanos = start;
  span.end_nanos = start + 1;
  span.worker = worker;
  span.seq = seq;
  return span;
}

TEST(TraceMergeTest, OrdersByStartWorkerSeq) {
  TraceStream shard0 = {MakeSpan(10, 0, 0), MakeSpan(30, 0, 1)};
  TraceStream shard1 = {MakeSpan(10, 1, 0), MakeSpan(20, 1, 1)};
  const TraceStream merged = MergeTraceShards({shard0, shard1});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].worker, 0u);  // (10, 0, 0)
  EXPECT_EQ(merged[1].worker, 1u);  // (10, 1, 0)
  EXPECT_EQ(merged[2].start_nanos, 20);
  EXPECT_EQ(merged[3].start_nanos, 30);
}

TEST(TraceMergeTest, ShardOrderDoesNotMatter) {
  TraceStream shard0 = {MakeSpan(10, 0, 0), MakeSpan(15, 0, 1)};
  TraceStream shard1 = {MakeSpan(5, 1, 0), MakeSpan(15, 1, 1)};
  TraceStream driver = {MakeSpan(15, kDriverTraceWorker, 0)};
  const TraceStream a = MergeTraceShards({shard0, shard1, driver});
  const TraceStream b = MergeTraceShards({driver, shard1, shard0});
  EXPECT_EQ(SerializeTrace(a), SerializeTrace(b));
  EXPECT_EQ(HashTrace(a), HashTrace(b));
  // Driver spans sort after every real worker at equal timestamps.
  EXPECT_EQ(a.back().worker, kDriverTraceWorker);
}

TEST(TraceMergeTest, SerializationIsStableAndHashable) {
  const TraceStream trace = {MakeSpan(1, 0, 0), MakeSpan(2, 1, 0)};
  const std::string text = SerializeTrace(trace);
  EXPECT_NE(text.find("lsbench-trace v1"), std::string::npos);
  EXPECT_EQ(HashTrace(trace), HashTrace(trace));
  EXPECT_NE(HashTrace(trace), HashTrace({MakeSpan(1, 0, 0)}));
}

// ---------------------------------------------------------------------------
// Counters, gauges, registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndGauges) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ops");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
  // Same name -> same instrument (pointer-stable).
  EXPECT_EQ(registry.GetCounter("ops"), counter);

  Gauge* gauge = registry.GetGauge("depth");
  gauge->Set(7);
  gauge->Add(-2);
  EXPECT_EQ(gauge->value(), 5);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "ops");
  EXPECT_EQ(snap.counters[0].second, 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 5);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zebra")->Increment();
  registry.GetCounter("alpha")->Increment();
  registry.GetCounter("mid")->Increment();
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

// ---------------------------------------------------------------------------
// Histogram + merge edge cases
// ---------------------------------------------------------------------------

TEST(HistogramTest, RecordsIntoCorrectBuckets) {
  FixedHistogram hist({10, 100, 1000});
  hist.Record(5);     // bucket 0 (<= 10)
  hist.Record(10);    // bucket 0 (inclusive upper)
  hist.Record(11);    // bucket 1
  hist.Record(5000);  // saturation bucket
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.min, 5);
  EXPECT_EQ(snap.max, 5000);
  EXPECT_EQ(snap.sum, 5 + 10 + 11 + 5000);
}

TEST(HistogramTest, QuantileWalksBucketsAndSaturation) {
  FixedHistogram hist({10, 100, 1000});
  for (int i = 0; i < 90; ++i) hist.Record(5);
  for (int i = 0; i < 9; ++i) hist.Record(50);
  hist.Record(777777);  // One outlier in the saturation bucket.
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 10);    // Bucket upper bound.
  EXPECT_EQ(snap.Quantile(0.95), 100);
  EXPECT_EQ(snap.Quantile(1.0), 777777);  // Saturation reports max.
  EXPECT_EQ(snap.Quantile(0.0), 5);       // q=0 reports min.
}

TEST(HistogramMergeTest, EmptyShardIsANoOp) {
  FixedHistogram hist({10, 100});
  hist.Record(7);
  HistogramSnapshot target = hist.Snapshot();
  const HistogramSnapshot empty;
  ASSERT_TRUE(target.MergeFrom(empty).ok());
  EXPECT_EQ(target.count, 1u);
  EXPECT_EQ(target.min, 7);
  EXPECT_EQ(target.max, 7);
}

TEST(HistogramMergeTest, UninitializedTargetAdoptsSourceLayout) {
  HistogramSnapshot target;  // Never recorded into, no bounds.
  FixedHistogram hist({10, 100});
  hist.Record(50);
  ASSERT_TRUE(target.MergeFrom(hist.Snapshot()).ok());
  EXPECT_EQ(target.count, 1u);
  ASSERT_EQ(target.bounds.size(), 2u);
  EXPECT_EQ(target.counts[1], 1u);
}

TEST(HistogramMergeTest, SingleSampleShardsAccumulateMinMax) {
  FixedHistogram a({10, 100});
  a.Record(3);
  FixedHistogram b({10, 100});
  b.Record(99);
  HistogramSnapshot target = a.Snapshot();
  ASSERT_TRUE(target.MergeFrom(b.Snapshot()).ok());
  EXPECT_EQ(target.count, 2u);
  EXPECT_EQ(target.min, 3);
  EXPECT_EQ(target.max, 99);
  EXPECT_EQ(target.sum, 102);
}

TEST(HistogramMergeTest, SaturatedBucketsSum) {
  FixedHistogram a({10});
  a.Record(1000000);
  a.Record(2000000);
  FixedHistogram b({10});
  b.Record(3000000);
  HistogramSnapshot target = a.Snapshot();
  ASSERT_TRUE(target.MergeFrom(b.Snapshot()).ok());
  ASSERT_EQ(target.counts.size(), 2u);
  EXPECT_EQ(target.counts[1], 3u);  // All three in the saturation bucket.
  EXPECT_EQ(target.max, 3000000);
  EXPECT_EQ(target.Quantile(0.99), 3000000);
}

TEST(HistogramMergeTest, MismatchedBoundsIsAnError) {
  FixedHistogram a({10, 100});
  a.Record(1);
  FixedHistogram b({10, 100, 1000});
  b.Record(1);
  HistogramSnapshot target = a.Snapshot();
  const Status status = target.MergeFrom(b.Snapshot());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  // Target is structurally unchanged after a refused merge.
  EXPECT_EQ(target.count, 1u);
  EXPECT_EQ(target.bounds.size(), 2u);
}

TEST(MetricsMergeTest, ShardsSumByName) {
  MetricsRegistry worker0;
  MetricsRegistry worker1;
  worker0.GetCounter("executor.attempts")->Increment(10);
  worker1.GetCounter("executor.attempts")->Increment(5);
  worker1.GetCounter("executor.retries")->Increment(2);
  worker0.GetHistogram("latency", {100, 200})->Record(150);
  worker1.GetHistogram("latency", {100, 200})->Record(50);

  const Result<MetricsSnapshot> merged =
      MergeMetricsShards({worker0.Snapshot(), worker1.Snapshot()});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().counters.size(), 2u);
  EXPECT_EQ(merged.value().counters[0].first, "executor.attempts");
  EXPECT_EQ(merged.value().counters[0].second, 15u);
  EXPECT_EQ(merged.value().counters[1].second, 2u);
  ASSERT_EQ(merged.value().histograms.size(), 1u);
  EXPECT_EQ(merged.value().histograms[0].second.count, 2u);
}

TEST(MetricsMergeTest, MismatchedHistogramLayoutsSurfaceAnError) {
  MetricsRegistry worker0;
  MetricsRegistry worker1;
  worker0.GetHistogram("latency", {100})->Record(1);
  worker1.GetHistogram("latency", {100, 200})->Record(1);
  const Result<MetricsSnapshot> merged =
      MergeMetricsShards({worker0.Snapshot(), worker1.Snapshot()});
  EXPECT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Stage profiler + breakdown merge
// ---------------------------------------------------------------------------

TEST(StageProfilerTest, DisabledProfilerIsANoOp) {
  StageProfiler profiler;
  EXPECT_FALSE(profiler.enabled());
  profiler.Add(Stage::kExecute, 100);
  { StageTimer timer(&profiler, Stage::kExecute); }
  { StageTimer timer(nullptr, Stage::kExecute); }
  EXPECT_TRUE(profiler.Breakdown().empty());
}

TEST(StageProfilerTest, ChargesTheCurrentPhase) {
  VirtualClock clock;
  StageProfiler profiler;
  profiler.Bind(&clock);
  profiler.set_phase(0);
  {
    StageTimer timer(&profiler, Stage::kExecute);
    clock.AdvanceNanos(100);
  }
  profiler.set_phase(1);
  {
    StageTimer timer(&profiler, Stage::kExecute);
    clock.AdvanceNanos(50);
  }
  profiler.Add(Stage::kGenerate, 7);

  const StageBreakdown breakdown = profiler.Breakdown();
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].phase, 0);
  EXPECT_EQ(
      breakdown[0].stages[static_cast<size_t>(Stage::kExecute)].total_nanos,
      100);
  EXPECT_EQ(breakdown[1].phase, 1);
  EXPECT_EQ(
      breakdown[1].stages[static_cast<size_t>(Stage::kExecute)].total_nanos,
      50);
  EXPECT_EQ(
      breakdown[1].stages[static_cast<size_t>(Stage::kGenerate)].samples, 1u);
}

TEST(StageBreakdownMergeTest, SumsPhaseByPhase) {
  PhaseStageBreakdown run_level;
  run_level.phase = PhaseStageBreakdown::kRunLevelPhase;
  run_level.stages[static_cast<size_t>(Stage::kLoad)] = {1000, 1};

  PhaseStageBreakdown phase0_a;
  phase0_a.phase = 0;
  phase0_a.stages[static_cast<size_t>(Stage::kExecute)] = {100, 10};
  PhaseStageBreakdown phase0_b;
  phase0_b.phase = 0;
  phase0_b.stages[static_cast<size_t>(Stage::kExecute)] = {50, 5};
  PhaseStageBreakdown phase1;
  phase1.phase = 1;
  phase1.stages[static_cast<size_t>(Stage::kPace)] = {30, 3};

  StageBreakdown target = {run_level, phase0_a};
  MergeStageBreakdown(&target, {phase0_b, phase1});
  ASSERT_EQ(target.size(), 3u);
  EXPECT_EQ(target[0].phase, PhaseStageBreakdown::kRunLevelPhase);
  EXPECT_EQ(target[1].phase, 0);
  EXPECT_EQ(
      target[1].stages[static_cast<size_t>(Stage::kExecute)].total_nanos,
      150);
  EXPECT_EQ(target[1].stages[static_cast<size_t>(Stage::kExecute)].samples,
            15u);
  EXPECT_EQ(target[2].phase, 1);
  EXPECT_EQ(target[2].stages[static_cast<size_t>(Stage::kPace)].samples, 3u);
}

TEST(StageBreakdownMergeTest, MergeIntoEmptyTargetCopies) {
  PhaseStageBreakdown phase0;
  phase0.phase = 0;
  phase0.stages[static_cast<size_t>(Stage::kRecord)] = {42, 6};
  StageBreakdown target;
  MergeStageBreakdown(&target, {phase0});
  ASSERT_EQ(target.size(), 1u);
  EXPECT_EQ(target[0].stages[static_cast<size_t>(Stage::kRecord)].total_nanos,
            42);
}

TEST(StageNameTest, EveryStageHasAName) {
  for (size_t s = 0; s < kNumStages; ++s) {
    EXPECT_FALSE(StageName(static_cast<Stage>(s)).empty());
  }
}

TEST(ObservabilitySpecTest, EnabledAndEquality) {
  ObservabilitySpec all_off;
  all_off.metrics = false;
  EXPECT_FALSE(all_off.Enabled());
  ObservabilitySpec defaults;
  EXPECT_TRUE(defaults.Enabled());  // metrics defaults on.
  EXPECT_FALSE(defaults == all_off);
}

TEST(RenderTraceFileTest, HeaderCarriesRunIdentity) {
  ObsReport report;
  report.trace.push_back(MakeSpan(1, 0, 0));
  const std::string payload = RenderTraceFile(report, "myrun", "mysut", 4);
  EXPECT_NE(payload.find("lsbench-trace v1"), std::string::npos);
  EXPECT_NE(payload.find("run=myrun"), std::string::npos);
  EXPECT_NE(payload.find("sut=mysut"), std::string::npos);
  EXPECT_NE(payload.find("workers=4"), std::string::npos);
}

}  // namespace
}  // namespace lsbench
