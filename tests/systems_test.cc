#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/dataset.h"
#include "sut/cost_model.h"
#include "sut/systems.h"
#include "util/clock.h"

namespace lsbench {
namespace {

std::vector<KeyValue> UniformPairs(size_t n, uint64_t seed) {
  const Dataset ds = GenerateDataset(UniformUnit(), {n, uint64_t{1} << 40, seed});
  std::vector<KeyValue> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < ds.keys.size(); ++i) {
    pairs.emplace_back(ds.keys[i], static_cast<Value>(i));
  }
  return pairs;
}

Operation MakeGet(Key key) {
  Operation op;
  op.type = OpType::kGet;
  op.key = key;
  return op;
}

Operation MakeRangeCount(Key lo, Key hi) {
  Operation op;
  op.type = OpType::kRangeCount;
  op.key = lo;
  op.range_end = hi;
  return op;
}

// ---------------------------------------------------------------------------
// BTreeSystem
// ---------------------------------------------------------------------------

TEST(BTreeSystemTest, BasicOps) {
  BTreeSystem sut;
  const auto pairs = UniformPairs(10000, 1);
  ASSERT_TRUE(sut.Load(pairs).ok());
  EXPECT_EQ(sut.name(), "btree_system");
  // No training for traditional systems.
  EXPECT_FALSE(sut.Train().trained);

  const OpResult hit = sut.Execute(MakeGet(pairs[5].first));
  EXPECT_TRUE(hit.ok);
  EXPECT_EQ(hit.rows, 1u);
  const OpResult miss = sut.Execute(MakeGet(pairs[5].first + 1));
  EXPECT_FALSE(miss.ok);

  Operation insert;
  insert.type = OpType::kInsert;
  insert.key = pairs[5].first + 1;
  insert.value = 42;
  EXPECT_TRUE(sut.Execute(insert).ok);
  EXPECT_TRUE(sut.Execute(MakeGet(insert.key)).ok);

  Operation del;
  del.type = OpType::kDelete;
  del.key = insert.key;
  EXPECT_TRUE(sut.Execute(del).ok);
  EXPECT_FALSE(sut.Execute(MakeGet(insert.key)).ok);

  Operation scan;
  scan.type = OpType::kScan;
  scan.key = 0;
  scan.scan_length = 25;
  EXPECT_EQ(sut.Execute(scan).rows, 25u);

  EXPECT_GT(sut.GetStats().memory_bytes, 0u);
}

TEST(BTreeSystemTest, RangeCountMatchesBruteForce) {
  BTreeSystem sut;
  const auto pairs = UniformPairs(20000, 2);
  ASSERT_TRUE(sut.Load(pairs).ok());
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const Key lo = rng.Next() % (uint64_t{1} << 40);
    const Key hi = lo + (rng.Next() % (uint64_t{1} << 36));
    uint64_t expected = 0;
    for (const auto& [k, v] : pairs) {
      (void)v;
      if (k >= lo && k <= hi) ++expected;
    }
    const OpResult r = sut.Execute(MakeRangeCount(lo, hi));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.rows, expected) << "range " << lo << ".." << hi;
  }
}

// ---------------------------------------------------------------------------
// LearnedKvSystem
// ---------------------------------------------------------------------------

class LearnedSystemTest
    : public ::testing::TestWithParam<LearnedSystemOptions::IndexKind> {};

TEST_P(LearnedSystemTest, TrainThenServe) {
  LearnedSystemOptions options;
  options.index_kind = GetParam();
  LearnedKvSystem sut(options);
  const auto pairs = UniformPairs(20000, 4);
  ASSERT_TRUE(sut.Load(pairs).ok());
  const TrainReport report = sut.Train();
  EXPECT_TRUE(report.trained);
  EXPECT_EQ(report.work_items, pairs.size());

  for (size_t i = 0; i < pairs.size(); i += 203) {
    EXPECT_TRUE(sut.Execute(MakeGet(pairs[i].first)).ok);
  }
  // Range counts match brute force through the learned path too.
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Key lo = rng.Next() % (uint64_t{1} << 40);
    const Key hi = lo + (uint64_t{1} << 35);
    uint64_t expected = 0;
    for (const auto& [k, v] : pairs) {
      (void)v;
      if (k >= lo && k <= hi) ++expected;
    }
    EXPECT_EQ(sut.Execute(MakeRangeCount(lo, hi)).rows, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LearnedSystemTest,
    ::testing::Values(LearnedSystemOptions::IndexKind::kRmi,
                      LearnedSystemOptions::IndexKind::kPgm),
    [](const ::testing::TestParamInfo<LearnedSystemOptions::IndexKind>& param_info) {
      return param_info.param == LearnedSystemOptions::IndexKind::kRmi ? "rmi"
                                                                 : "pgm";
    });

TEST(LearnedSystemTest, DeltaThresholdPolicyRetrains) {
  LearnedSystemOptions options;
  options.retrain_policy = RetrainPolicy::kDeltaThreshold;
  options.delta_threshold_fraction = 0.01;
  VirtualClock clock;
  LearnedKvSystem sut(options, &clock);
  const auto pairs = UniformPairs(10000, 6);
  ASSERT_TRUE(sut.Load(pairs).ok());
  (void)sut.Train();
  ASSERT_EQ(sut.retrain_events(), 0u);

  // Insert enough fresh keys to cross the 1% delta threshold repeatedly.
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    Operation op;
    op.type = OpType::kInsert;
    op.key = rng.Next();
    op.value = i;
    (void)sut.Execute(op);
  }
  EXPECT_GT(sut.retrain_events(), 0u);
  EXPECT_LT(sut.delta_size(), 200u);  // Deltas were folded in.
  const SutStats stats = sut.GetStats();
  EXPECT_EQ(stats.retrain_events, sut.retrain_events());
}

TEST(LearnedSystemTest, DriftTriggeredPolicyRetrainsAfterShift) {
  LearnedSystemOptions options;
  options.retrain_policy = RetrainPolicy::kDriftTriggered;
  options.drift.min_window = 256;
  options.drift.window_capacity = 512;
  LearnedKvSystem sut(options);
  const auto pairs = UniformPairs(10000, 8);
  ASSERT_TRUE(sut.Load(pairs).ok());
  (void)sut.Train();

  // Keep reading the trained distribution: no drift.
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    (void)sut.Execute(MakeGet(pairs[rng.NextBounded(pairs.size())].first));
  }
  EXPECT_EQ(sut.retrain_events(), 0u);

  // Shift: hammer a tiny corner of the key space (inserts carry the new
  // distribution).
  for (int i = 0; i < 2000; ++i) {
    Operation op;
    op.type = OpType::kInsert;
    op.key = (uint64_t{1} << 39) + rng.NextBounded(1 << 20);
    op.value = i;
    (void)sut.Execute(op);
  }
  EXPECT_GT(sut.retrain_events(), 0u);
}

TEST(LearnedSystemTest, HoldoutPhaseSuppressesPhaseStartRetrain) {
  LearnedSystemOptions options;
  options.retrain_policy = RetrainPolicy::kOnPhaseStart;
  LearnedKvSystem sut(options);
  ASSERT_TRUE(sut.Load(UniformPairs(5000, 10)).ok());
  (void)sut.Train();
  sut.OnPhaseStart(1, /*holdout=*/true);
  EXPECT_EQ(sut.retrain_events(), 0u);
  sut.OnPhaseStart(2, /*holdout=*/false);
  EXPECT_EQ(sut.retrain_events(), 1u);
}

TEST(LearnedSystemTest, NeverPolicyNeverRetrains) {
  LearnedSystemOptions options;
  options.retrain_policy = RetrainPolicy::kNever;
  LearnedKvSystem sut(options);
  ASSERT_TRUE(sut.Load(UniformPairs(5000, 11)).ok());
  (void)sut.Train();
  Rng rng(12);
  for (int i = 0; i < 3000; ++i) {
    Operation op;
    op.type = OpType::kInsert;
    op.key = rng.Next();
    op.value = i;
    (void)sut.Execute(op);
  }
  EXPECT_EQ(sut.retrain_events(), 0u);
  EXPECT_GT(sut.delta_size(), 2000u);
}

TEST(LearnedSystemTest, NamesEncodeConfiguration) {
  LearnedSystemOptions rmi;
  rmi.retrain_policy = RetrainPolicy::kNever;
  EXPECT_EQ(LearnedKvSystem(rmi).name(), "learned_rmi_system(never)");
  LearnedSystemOptions pgm;
  pgm.index_kind = LearnedSystemOptions::IndexKind::kPgm;
  pgm.retrain_policy = RetrainPolicy::kDriftTriggered;
  EXPECT_EQ(LearnedKvSystem(pgm).name(),
            "learned_pgm_system(drift_triggered)");
}

// ---------------------------------------------------------------------------
// AdaptiveKvSystem
// ---------------------------------------------------------------------------

TEST(AdaptiveSystemTest, AdaptsWithoutExplicitTraining) {
  AdaptiveKvSystem sut;
  ASSERT_TRUE(sut.Load(UniformPairs(10000, 13)).ok());
  EXPECT_FALSE(sut.Train().trained);  // No offline training phase.

  Rng rng(14);
  for (int i = 0; i < 10000; ++i) {
    Operation op;
    op.type = OpType::kInsert;
    op.key = (uint64_t{1} << 38) + rng.NextBounded(1 << 24);
    op.value = i;
    EXPECT_TRUE(sut.Execute(op).ok);
  }
  const SutStats stats = sut.GetStats();
  EXPECT_GT(stats.retrain_events, 0u);  // Online splits/retrains happened.
  EXPECT_GT(stats.offline_train_items, 0u);
}

// ---------------------------------------------------------------------------
// Cost models
// ---------------------------------------------------------------------------

TEST(HardwareProfileTest, CostAndTimeScaling) {
  const HardwareProfile cpu = HardwareProfile::Cpu();
  const HardwareProfile gpu = HardwareProfile::Gpu();
  EXPECT_DOUBLE_EQ(cpu.TrainingSeconds(120.0), 120.0);
  EXPECT_DOUBLE_EQ(gpu.TrainingSeconds(120.0), 10.0);
  EXPECT_DOUBLE_EQ(cpu.TrainingDollars(3600.0), 1.0);
  // GPU: 3600/12=300 s at 3 $/h = 0.25 $.
  EXPECT_DOUBLE_EQ(gpu.TrainingDollars(3600.0), 0.25);
}

TEST(DbaCostModelTest, StepFunction) {
  const DbaCostModel dba = DbaCostModel::Default();
  EXPECT_DOUBLE_EQ(dba.MultiplierAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dba.MultiplierAt(119.0), 1.0);    // < 2h * 60.
  EXPECT_DOUBLE_EQ(dba.MultiplierAt(120.0), 1.2);    // Tier 1 unlocked.
  EXPECT_DOUBLE_EQ(dba.MultiplierAt(599.0), 1.2);
  EXPECT_DOUBLE_EQ(dba.MultiplierAt(600.0), 1.6);    // Tier 2 (2h+8h)*60.
  EXPECT_DOUBLE_EQ(dba.MultiplierAt(100000.0), 2.2);
  EXPECT_DOUBLE_EQ(dba.CumulativeDollars(0), 120.0);
  EXPECT_DOUBLE_EQ(dba.CumulativeDollars(2), 2040.0);
  EXPECT_DOUBLE_EQ(dba.TotalDollars(), 2040.0);
}

TEST(TrainingCostToOutperformTest, FindsCrossover) {
  const DbaCostModel dba = DbaCostModel::Default();
  const double base = 1000.0;
  // Learned system throughput rises with training cost.
  const std::vector<double> costs = {1, 10, 100, 1000};
  const std::vector<double> tputs = {500, 900, 1500, 3000};
  // At $100 the DBA has reached x1.0 (<$120), learned does 1500 > 1000.
  EXPECT_DOUBLE_EQ(TrainingCostToOutperform(costs, tputs, base, dba), 100.0);
}

TEST(TrainingCostToOutperformTest, NeverWins) {
  const DbaCostModel dba = DbaCostModel::Default();
  EXPECT_DOUBLE_EQ(
      TrainingCostToOutperform({1, 10}, {100, 200}, 1000.0, dba), -1.0);
}

TEST(TrainingCostToOutperformTest, ComparesAgainstUnlockedTier) {
  const DbaCostModel dba = DbaCostModel::Default();
  // At $150 the DBA already has x1.2 (=1200): 1100 is NOT enough.
  EXPECT_DOUBLE_EQ(
      TrainingCostToOutperform({150, 700}, {1100, 2000}, 1000.0, dba), 700.0);
}

}  // namespace
}  // namespace lsbench
