#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.h"
#include "util/random.h"
#include "workload/access_distribution.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// Policy-specific behavior
// ---------------------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));
  EXPECT_TRUE(cache.Access(1));   // 1 becomes most recent.
  EXPECT_FALSE(cache.Access(3));  // Evicts 2.
  EXPECT_TRUE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));  // 2 was evicted.
}

TEST(LfuCacheTest, EvictsLeastFrequentlyUsed) {
  LfuCache cache(2);
  cache.Access(1);
  cache.Access(1);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);  // Evicts 2 (frequency 1) not 1 (frequency 3).
  EXPECT_TRUE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));
}

TEST(FifoCacheTest, EvictsOldestRegardlessOfUse) {
  FifoCache cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);  // Hit, but does not refresh FIFO position.
  cache.Access(3);  // Evicts 1 (oldest admitted).
  EXPECT_FALSE(cache.Access(1));
}

TEST(LearnedCacheTest, AdmissionResistsScanPollution) {
  // A hot working set plus a one-pass scan: learned admission should keep
  // the hot keys resident because the scan's keys have no reuse history.
  LearnedCache cache(64);
  Rng rng(1);
  // Warm the hot set.
  for (int round = 0; round < 50; ++round) {
    for (Key k = 0; k < 64; ++k) cache.Access(k);
  }
  cache.ResetCounters();
  // Interleave hot accesses with a long cold scan.
  Key scan_key = 1000000;
  for (int i = 0; i < 5000; ++i) {
    cache.Access(rng.NextBounded(64));
    cache.Access(scan_key++);
  }
  // Hot keys should still hit most of the time despite the scan.
  uint64_t hot_hits = 0;
  for (Key k = 0; k < 64; ++k) {
    if (cache.Access(k)) ++hot_hits;
  }
  EXPECT_GT(hot_hits, 48u);
}

TEST(LearnedCacheTest, GhostTableStaysBounded) {
  LearnedCache::Options options;
  options.ghost_factor = 2.0;
  LearnedCache cache(128, options);
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) {
    cache.Access(rng.Next());  // All-distinct stream.
  }
  EXPECT_LE(cache.ghost_size(), 2 * 256u + 128u);
}

// ---------------------------------------------------------------------------
// Conformance across all policies
// ---------------------------------------------------------------------------

class CacheConformanceTest : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(CacheConformanceTest, CapacityNeverExceeded) {
  const auto cache = MakeCache(GetParam(), 100);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    cache->Access(rng.NextBounded(1000));
    ASSERT_LE(cache->size(), 100u);
  }
  EXPECT_EQ(cache->capacity(), 100u);
}

TEST_P(CacheConformanceTest, RepeatAccessesHit) {
  const auto cache = MakeCache(GetParam(), 16);
  for (Key k = 0; k < 8; ++k) cache->Access(k);
  for (Key k = 0; k < 8; ++k) EXPECT_TRUE(cache->Access(k));
}

TEST_P(CacheConformanceTest, HitRateAccounting) {
  const auto cache = MakeCache(GetParam(), 4);
  cache->Access(1);  // Miss.
  cache->Access(1);  // Hit.
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_DOUBLE_EQ(cache->HitRate(), 0.5);
  cache->ResetCounters();
  EXPECT_EQ(cache->hits(), 0u);
}

TEST_P(CacheConformanceTest, SkewedTrafficBeatsCapacityRatio) {
  // Under zipfian access a cache of 10% capacity should far exceed a 10%
  // hit rate for every policy.
  const size_t universe = 10000;
  const auto cache = MakeCache(GetParam(), universe / 10);
  ZipfianAccess access(0.99, /*scramble=*/false);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    cache->Access(access.NextRank(&rng, universe));
  }
  EXPECT_GT(cache->HitRate(), 0.4) << CachePolicyToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CacheConformanceTest,
    ::testing::Values(CachePolicy::kLru, CachePolicy::kLfu,
                      CachePolicy::kFifo, CachePolicy::kLearned),
    [](const ::testing::TestParamInfo<CachePolicy>& param_info) {
      return CachePolicyToString(param_info.param);
    });

TEST(CacheFactoryTest, NamesMatchPolicies) {
  EXPECT_EQ(MakeCache(CachePolicy::kLru, 4)->name(), "lru");
  EXPECT_EQ(MakeCache(CachePolicy::kLfu, 4)->name(), "lfu");
  EXPECT_EQ(MakeCache(CachePolicy::kFifo, 4)->name(), "fifo");
  EXPECT_EQ(MakeCache(CachePolicy::kLearned, 4)->name(), "learned");
}

}  // namespace
}  // namespace lsbench
