#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/driver.h"
#include "core/event_sink.h"
#include "core/metrics.h"
#include "core/run_spec.h"
#include "data/dataset.h"
#include "sut/concurrent_kv.h"
#include "sut/serializing.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

/// Deterministic two-phase spec for simulated multi-worker runs.
RunSpec MakeSpec(uint64_t seed, uint32_t workers) {
  RunSpec spec;
  spec.name = "conc_" + std::to_string(seed) + "_w" + std::to_string(workers);
  spec.seed = seed;
  DatasetOptions options;
  options.num_keys = 4000;
  options.seed = seed;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));
  options.seed = seed + 1;
  spec.datasets.push_back(GenerateDataset(GaussianUnit(0.4, 0.1), options));

  PhaseSpec p0;
  p0.name = "reads";
  p0.dataset_index = 0;
  p0.mix = OperationMix::ReadMostly();
  p0.num_operations = 1500;
  spec.phases.push_back(p0);

  PhaseSpec p1;
  p1.name = "mixed";
  p1.dataset_index = 1;
  p1.mix = OperationMix::ReadWrite();
  p1.num_operations = 1500;
  p1.transition_in = TransitionKind::kLinear;
  p1.transition_operations = 400;
  spec.phases.push_back(p1);

  spec.interval_nanos = 100000000;
  spec.boxplot_sample_nanos = 10000000;
  spec.execution.workers = workers;
  return spec;
}

RunResult RunSimulated(const RunSpec& spec, SystemUnderTest* sut) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  BenchmarkDriver driver(&clock, options);
  const Result<RunResult> result = driver.Run(spec, sut);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

void ExpectIdenticalStreams(const EventStream& a, const EventStream& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp_nanos, b[i].timestamp_nanos) << "event " << i;
    EXPECT_EQ(a[i].latency_nanos, b[i].latency_nanos) << "event " << i;
    EXPECT_EQ(a[i].phase, b[i].phase) << "event " << i;
    EXPECT_EQ(a[i].type, b[i].type) << "event " << i;
    EXPECT_EQ(a[i].ok, b[i].ok) << "event " << i;
    EXPECT_EQ(a[i].rows, b[i].rows) << "event " << i;
    EXPECT_EQ(a[i].retries, b[i].retries) << "event " << i;
    EXPECT_EQ(a[i].failed, b[i].failed) << "event " << i;
    EXPECT_EQ(a[i].worker, b[i].worker) << "event " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << "event " << i;
  }
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override { BenchmarkDriver::ResetHoldoutRegistryForTesting(); }
};

TEST_F(ConcurrencyTest, WorkerShareSplitsExactly) {
  for (uint64_t total : {0ull, 1ull, 7ull, 100ull, 4097ull}) {
    for (uint32_t workers : {1u, 2u, 3u, 4u, 16u}) {
      uint64_t sum = 0;
      for (uint32_t w = 0; w < workers; ++w) {
        const uint64_t share = WorkerShare(total, workers, w);
        EXPECT_LE(share, total / workers + 1);
        sum += share;
      }
      EXPECT_EQ(sum, total) << total << "/" << workers;
    }
  }
  // The full total lands on the single worker of a serial run.
  EXPECT_EQ(WorkerShare(123, 1, 0), 123u);
}

TEST_F(ConcurrencyTest, MergeOrdersByTimestampWorkerSeq) {
  EventSink sink0(0);
  EventSink sink1(1);
  OpEvent e;
  e.timestamp_nanos = 200;
  sink0.Record(e);
  e.timestamp_nanos = 100;
  sink1.Record(e);
  e.timestamp_nanos = 200;  // Ties with sink0's event; worker 1 sorts after.
  sink1.Record(e);

  std::vector<EventStream> shards;
  shards.push_back(sink0.TakeEvents());
  shards.push_back(sink1.TakeEvents());
  const EventStream merged = MergeEventShards(std::move(shards));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].timestamp_nanos, 100);
  EXPECT_EQ(merged[0].worker, 1u);
  EXPECT_EQ(merged[1].worker, 0u);  // Tie at t=200: worker 0 first.
  EXPECT_EQ(merged[2].worker, 1u);
  // Seq numbers are per-shard issue order.
  EXPECT_EQ(merged[0].seq, 0u);
  EXPECT_EQ(merged[2].seq, 1u);
}

TEST_F(ConcurrencyTest, SingleShardMergePreservesOrder) {
  EventSink sink(0);
  OpEvent e;
  e.timestamp_nanos = 50;
  sink.Record(e);
  e.timestamp_nanos = 10;  // Out of timestamp order on purpose.
  sink.Record(e);
  std::vector<EventStream> shards;
  shards.push_back(sink.TakeEvents());
  const EventStream merged = MergeEventShards(std::move(shards));
  ASSERT_EQ(merged.size(), 2u);
  // A single shard passes through untouched — the serial driver's stream is
  // never reordered, which is what makes workers=1 bit-identical.
  EXPECT_EQ(merged[0].timestamp_nanos, 50);
  EXPECT_EQ(merged[1].timestamp_nanos, 10);
}

TEST_F(ConcurrencyTest, SerialRunIsDeterministic) {
  const RunSpec spec = MakeSpec(11, 1);
  BTreeSystem sut_a;
  BTreeSystem sut_b;
  const RunResult a = RunSimulated(spec, &sut_a);
  const RunResult b = RunSimulated(spec, &sut_b);
  ExpectIdenticalStreams(a.events, b.events);
  for (const OpEvent& e : a.events) EXPECT_EQ(e.worker, 0u);
}

TEST_F(ConcurrencyTest, SimulatedFanOutIsDeterministic) {
  const RunSpec spec = MakeSpec(12, 4);
  PartitionedKvSystem sut_a(8);
  PartitionedKvSystem sut_b(8);
  const RunResult a = RunSimulated(spec, &sut_a);
  const RunResult b = RunSimulated(spec, &sut_b);
  ExpectIdenticalStreams(a.events, b.events);

  // Identical merged metrics, not just identical events.
  EXPECT_EQ(a.metrics.total_operations, b.metrics.total_operations);
  EXPECT_EQ(a.metrics.total_sla_violations, b.metrics.total_sla_violations);
  EXPECT_EQ(a.metrics.overall_latency.count(),
            b.metrics.overall_latency.count());
  EXPECT_EQ(a.metrics.overall_latency.sum(), b.metrics.overall_latency.sum());
  EXPECT_EQ(a.metrics.resilience.failed_operations,
            b.metrics.resilience.failed_operations);

  // All four workers produced events; merge is globally time-ordered with
  // contiguous phases.
  uint32_t seen_workers = 0;
  for (const OpEvent& e : a.events) seen_workers |= 1u << e.worker;
  EXPECT_EQ(seen_workers, 0b1111u);
  for (size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_GE(a.events[i].timestamp_nanos, a.events[i - 1].timestamp_nanos);
    EXPECT_GE(a.events[i].phase, a.events[i - 1].phase);
  }
  EXPECT_EQ(a.events.size(), 3000u);
}

TEST_F(ConcurrencyTest, SerialSutIsStripedUnderFanOut) {
  // A serial SUT (BTreeSystem) under workers > 1 runs behind the driver's
  // SerializingSut wrapper: the run must complete with every operation
  // accounted for and per-shard shares matching WorkerShare.
  const RunSpec spec = MakeSpec(13, 3);
  BTreeSystem sut;
  EXPECT_EQ(sut.concurrency(), SutConcurrency::kSerial);
  const RunResult run = RunSimulated(spec, &sut);
  ASSERT_EQ(run.events.size(), 3000u);

  std::vector<uint64_t> per_worker(3, 0);
  for (const OpEvent& e : run.events) {
    ASSERT_LT(e.worker, 3u);
    ++per_worker[e.worker];
  }
  uint64_t total_ops = 0;
  for (const PhaseSpec& phase : spec.phases) {
    total_ops += phase.num_operations;
  }
  for (uint32_t w = 0; w < 3; ++w) {
    uint64_t expect = 0;
    for (const PhaseSpec& phase : spec.phases) {
      expect += WorkerShare(phase.num_operations, 3, w);
    }
    EXPECT_EQ(per_worker[w], expect) << "worker " << w;
  }
  EXPECT_EQ(per_worker[0] + per_worker[1] + per_worker[2], total_ops);
}

TEST_F(ConcurrencyTest, FanOutWithFaultLanesIsDeterministic) {
  RunSpec spec = MakeSpec(14, 4);
  FaultWindow window;
  window.execute_fail_rate = 0.05;
  spec.faults.windows.push_back(window);
  spec.faults.seed = 99;
  spec.resilience.max_retries = 2;

  PartitionedKvSystem sut_a(8);
  PartitionedKvSystem sut_b(8);
  const RunResult a = RunSimulated(spec, &sut_a);
  const RunResult b = RunSimulated(spec, &sut_b);
  ExpectIdenticalStreams(a.events, b.events);
  EXPECT_EQ(a.fault_stats.injected_failures, b.fault_stats.injected_failures);
  EXPECT_GT(a.fault_stats.injected_failures, 0u);
  EXPECT_EQ(a.metrics.resilience.total_retries,
            b.metrics.resilience.total_retries);
}

TEST_F(ConcurrencyTest, RealClockFanOutRunsToCompletion) {
  // Actual std::thread fan-out (no virtual clock): small closed-loop run.
  // This is the path the TSan CI job exercises.
  RunSpec spec = MakeSpec(15, 4);
  spec.phases[0].num_operations = 400;
  spec.phases[1].num_operations = 400;
  spec.phases[1].transition_operations = 100;
  PartitionedKvSystem sut(8);
  EXPECT_EQ(sut.concurrency(), SutConcurrency::kThreadSafe);
  BenchmarkDriver driver;
  const Result<RunResult> result = driver.Run(spec, &sut);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RunResult& run = result.value();
  EXPECT_EQ(run.events.size(), 800u);
  for (size_t i = 1; i < run.events.size(); ++i) {
    EXPECT_GE(run.events[i].timestamp_nanos,
              run.events[i - 1].timestamp_nanos);
    EXPECT_GE(run.events[i].phase, run.events[i - 1].phase);
  }
}

TEST_F(ConcurrencyTest, SerializingSutReportsThreadSafe) {
  BTreeSystem inner;
  SerializingSut wrapped(&inner);
  EXPECT_EQ(wrapped.concurrency(), SutConcurrency::kThreadSafe);
  EXPECT_EQ(wrapped.name(), inner.name());
}

TEST_F(ConcurrencyTest, PartitionedKvMatchesBTreeResults) {
  // Same spec, same seed, workers=1: the partitioned store must return the
  // same per-operation results as the reference BTree (it is a pure
  // sharding of the same ordered map).
  const RunSpec spec = MakeSpec(16, 1);
  BTreeSystem btree;
  PartitionedKvSystem partitioned(8);
  const RunResult a = RunSimulated(spec, &btree);
  const RunResult b = RunSimulated(spec, &partitioned);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].type, b.events[i].type) << "event " << i;
    EXPECT_EQ(a.events[i].ok, b.events[i].ok) << "event " << i;
    EXPECT_EQ(a.events[i].rows, b.events[i].rows) << "event " << i;
  }
}

TEST_F(ConcurrencyTest, ShardAccumulationCommutesWithMerge) {
  const RunSpec spec = MakeSpec(17, 4);
  PartitionedKvSystem sut(8);
  const RunResult run = RunSimulated(spec, &sut);
  const int64_t sla = run.metrics.sla_nanos;

  // Whole-stream accumulation...
  ShardAccumulation whole;
  for (const OpEvent& e : run.events) whole.Accumulate(e, sla);

  // ...equals per-worker accumulation merged in any order.
  std::vector<ShardAccumulation> shards(4);
  for (const OpEvent& e : run.events) shards[e.worker].Accumulate(e, sla);
  ShardAccumulation merged;
  for (size_t w = shards.size(); w-- > 0;) merged.Merge(shards[w]);

  EXPECT_EQ(whole.operations, merged.operations);
  EXPECT_EQ(whole.ok_operations, merged.ok_operations);
  EXPECT_EQ(whole.sla_violations, merged.sla_violations);
  EXPECT_EQ(whole.failed_operations, merged.failed_operations);
  EXPECT_EQ(whole.timeouts, merged.timeouts);
  EXPECT_EQ(whole.shed_operations, merged.shed_operations);
  EXPECT_EQ(whole.total_retries, merged.total_retries);
  EXPECT_EQ(whole.latency.count(), merged.latency.count());
  EXPECT_EQ(whole.latency.sum(), merged.latency.sum());
  // And both match the driver's reported totals.
  EXPECT_EQ(whole.operations, run.metrics.total_operations);
  EXPECT_EQ(whole.sla_violations, run.metrics.total_sla_violations);
}

TEST_F(ConcurrencyTest, ExecutionSpecValidation) {
  RunSpec spec = MakeSpec(18, 1);
  spec.execution.workers = 0;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.execution.workers = 2000;
  EXPECT_TRUE(spec.Validate().IsInvalidArgument());
  spec.execution.workers = 4;
  EXPECT_TRUE(spec.Validate().ok());

  // Worker count is part of the structural identity of a run.
  const RunSpec one = MakeSpec(18, 1);
  const RunSpec four = MakeSpec(18, 4);
  EXPECT_NE(one.StructuralHash(), four.StructuralHash());
}

}  // namespace
}  // namespace lsbench
