#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/specialization.h"
#include "data/dataset.h"
#include "stats/ascii_chart.h"
#include "report/report.h"
#include "sut/systems.h"
#include "util/csv.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// ASCII chart primitives
// ---------------------------------------------------------------------------

TEST(AsciiChartTest, BoxPlotRendersMarkers) {
  BoxPlotSummary box = ComputeBoxPlot({1, 2, 3, 4, 5, 6, 7, 8, 9, 100});
  const std::string chart = RenderBoxPlotChart({{"mybox", box}});
  EXPECT_NE(chart.find("mybox"), std::string::npos);
  EXPECT_NE(chart.find('['), std::string::npos);
  EXPECT_NE(chart.find(']'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);  // The outlier at 100.
}

TEST(AsciiChartTest, BoxPlotHandlesEmpty) {
  EXPECT_NE(RenderBoxPlotChart({}).find("no data"), std::string::npos);
  BoxPlotSummary empty;
  EXPECT_NE(RenderBoxPlotChart({{"x", empty}}).find("empty"),
            std::string::npos);
}

TEST(AsciiChartTest, LineChartPlotsAllSeries) {
  Series a{"alpha", {0, 1, 2, 3}, {0, 1, 2, 3}};
  Series b{"beta", {0, 1, 2, 3}, {3, 2, 1, 0}};
  const std::string chart = RenderLineChart({a, b});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find("alpha"), std::string::npos);
  EXPECT_NE(chart.find("beta"), std::string::npos);
}

TEST(AsciiChartTest, LineChartEmpty) {
  EXPECT_NE(RenderLineChart({}).find("no data"), std::string::npos);
}

TEST(AsciiChartTest, BandChartStacksViolations) {
  std::vector<BandColumn> columns = {{10, 0}, {5, 5}, {0, 10}};
  const std::string chart = RenderBandChart(columns);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find('X'), std::string::npos);
}

TEST(AsciiChartTest, TableAlignsColumns) {
  const std::string table =
      RenderTable({"name", "value"}, {{"a", "1"}, {"longer", "22"}});
  EXPECT_NE(table.find("| name"), std::string::npos);
  EXPECT_NE(table.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(table.find("|--"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Full report rendering over a real simulated run
// ---------------------------------------------------------------------------

class ReportRenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BenchmarkDriver::ResetHoldoutRegistryForTesting();
    spec_.name = "report_test";
    DatasetOptions options;
    options.num_keys = 3000;
    spec_.datasets.push_back(GenerateDataset(UniformUnit(), options));
    PhaseSpec phase;
    phase.name = "p0";
    phase.mix = OperationMix::ReadMostly();
    phase.num_operations = 1000;
    spec_.phases.push_back(phase);
    phase.name = "p1";
    phase.holdout = true;
    spec_.phases.push_back(phase);
    spec_.interval_nanos = 50000000;
    spec_.boxplot_sample_nanos = 5000000;

    DriverOptions driver_options;
    driver_options.virtual_clock = &clock_;
    BenchmarkDriver driver(&clock_, driver_options);
    BTreeSystem sut;
    run_ = driver.Run(spec_, &sut).value();
  }

  VirtualClock clock_;
  RunSpec spec_;
  RunResult run_;
};

TEST_F(ReportRenderTest, RunSummaryMentionsEverything) {
  const std::string summary = RenderRunSummary(run_);
  EXPECT_NE(summary.find("report_test"), std::string::npos);
  EXPECT_NE(summary.find("btree_system"), std::string::npos);
  EXPECT_NE(summary.find("operations: 2000"), std::string::npos);
  EXPECT_NE(summary.find("SLA"), std::string::npos);
  EXPECT_NE(summary.find("phase"), std::string::npos);
}

TEST_F(ReportRenderTest, SpecializationReportMarksHoldout) {
  const SpecializationReport report =
      BuildSpecializationReport(spec_, run_);
  const std::string text = RenderSpecializationReport(report);
  EXPECT_NE(text.find("[holdout]"), std::string::npos);
  EXPECT_NE(text.find("phi"), std::string::npos);

  const std::string csv = SpecializationCsv(report);
  const auto parsed = ParseCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 3u);  // Header + 2 phases.
  EXPECT_EQ(parsed.value()[0][0], "phase");
}

TEST_F(ReportRenderTest, CumulativeComparisonIncludesArea) {
  const std::string text = RenderCumulativeComparison(
      {{"sys_a", run_.metrics.cumulative},
       {"sys_b", run_.metrics.cumulative}});
  EXPECT_NE(text.find("area vs ideal"), std::string::npos);
  EXPECT_NE(text.find("area between systems"), std::string::npos);
  EXPECT_NE(text.find("sys_a"), std::string::npos);
}

TEST_F(ReportRenderTest, SlaBandsRendersTotals) {
  const std::string text =
      RenderSlaBands(run_.metrics.bands, run_.metrics.sla_nanos);
  EXPECT_NE(text.find("total completions: 2000"), std::string::npos);
}

TEST_F(ReportRenderTest, CsvEmittersRoundTrip) {
  for (const std::string& csv :
       {CumulativeCsv(run_.metrics.cumulative),
        SlaBandsCsv(run_.metrics.bands), PhaseMetricsCsv(run_.metrics),
        OpTypeCsv(run_.metrics)}) {
    const auto parsed = ParseCsv(csv);
    ASSERT_TRUE(parsed.ok());
    EXPECT_GE(parsed.value().size(), 2u);
    // Rectangular: all rows have the header's width.
    for (const auto& row : parsed.value()) {
      EXPECT_EQ(row.size(), parsed.value()[0].size());
    }
  }
}

TEST_F(ReportRenderTest, CostReportShowsCrossover) {
  const DbaCostModel dba = DbaCostModel::Default();
  std::vector<CostPoint> points = {{1, 500}, {50, 1200}, {500, 2500}};
  const std::string text =
      RenderCostReport({{"learned_cpu", points}}, 1000.0, dba);
  EXPECT_NE(text.find("training cost to outperform"), std::string::npos);
  EXPECT_NE(text.find("learned_cpu"), std::string::npos);
  EXPECT_NE(text.find("$"), std::string::npos);

  const std::string csv = CostCurveCsv({{"learned_cpu", points}});
  const auto parsed = ParseCsv(csv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 4u);
}

TEST_F(ReportRenderTest, CostReportNeverCase) {
  const DbaCostModel dba = DbaCostModel::Default();
  const std::string text = RenderCostReport(
      {{"weak_system", {{1, 10}, {1000, 20}}}}, 1000.0, dba);
  EXPECT_NE(text.find("never"), std::string::npos);
}

}  // namespace
}  // namespace lsbench
