#include <gtest/gtest.h>

#include <vector>

#include "core/metrics.h"

namespace lsbench {
namespace {

constexpr int64_t kSecond = 1000000000;
constexpr int64_t kMilli = 1000000;

/// Events at a constant rate: `per_second` events/s for `seconds` seconds,
/// each with the given latency, starting at `start`.
EventStream ConstantRate(int64_t start, int seconds, int per_second,
                         int64_t latency, int phase = 0) {
  EventStream events;
  for (int s = 0; s < seconds; ++s) {
    for (int i = 0; i < per_second; ++i) {
      OpEvent e;
      e.timestamp_nanos =
          start + s * kSecond + (i * kSecond) / per_second;
      e.latency_nanos = latency;
      e.phase = phase;
      e.ok = true;
      events.push_back(e);
    }
  }
  return events;
}

// ---------------------------------------------------------------------------
// Cumulative curves (Fig. 1b)
// ---------------------------------------------------------------------------

TEST(CumulativeCurveTest, CountsPerInterval) {
  const EventStream events = ConstantRate(0, 5, 100, kMilli);
  const auto curve = BuildCumulativeCurve(events, kSecond);
  ASSERT_GE(curve.size(), 6u);
  EXPECT_EQ(curve.front().completed, 0u);
  EXPECT_EQ(curve[1].completed, 100u);
  EXPECT_EQ(curve[3].completed, 300u);
  EXPECT_EQ(curve.back().completed, 500u);
}

TEST(CumulativeCurveTest, EmptyStream) {
  const auto curve = BuildCumulativeCurve({}, kSecond);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].completed, 0u);
}

TEST(AreaVsIdealTest, ConstantThroughputIsNearZero) {
  const EventStream events = ConstantRate(0, 10, 100, kMilli);
  const auto curve = BuildCumulativeCurve(events, kSecond);
  const double area = AreaVsIdeal(curve);
  // Perfectly linear accumulation has ~0 area vs the ideal line.
  EXPECT_NEAR(area, 0.0, 60.0);  // 1000 events over 10s: tolerance 6%.
}

TEST(AreaVsIdealTest, SlowStartIsNegative) {
  // 5 s at 10/s then 5 s at 190/s: the curve sags below the ideal line.
  EventStream events = ConstantRate(0, 5, 10, kMilli);
  const EventStream fast = ConstantRate(5 * kSecond, 5, 190, kMilli);
  events.insert(events.end(), fast.begin(), fast.end());
  const auto curve = BuildCumulativeCurve(events, kSecond);
  EXPECT_LT(AreaVsIdeal(curve), -100.0);
}

TEST(AreaVsIdealTest, FastStartIsPositive) {
  EventStream events = ConstantRate(0, 5, 190, kMilli);
  const EventStream slow = ConstantRate(5 * kSecond, 5, 10, kMilli);
  events.insert(events.end(), slow.begin(), slow.end());
  const auto curve = BuildCumulativeCurve(events, kSecond);
  EXPECT_GT(AreaVsIdeal(curve), 100.0);
}

TEST(AreaBetweenCurvesTest, FasterSystemWins) {
  const auto fast =
      BuildCumulativeCurve(ConstantRate(0, 10, 200, kMilli), kSecond);
  const auto slow =
      BuildCumulativeCurve(ConstantRate(0, 10, 100, kMilli), kSecond);
  EXPECT_GT(AreaBetweenCurves(fast, slow), 100.0);
  EXPECT_LT(AreaBetweenCurves(slow, fast), -100.0);
  EXPECT_NEAR(AreaBetweenCurves(fast, fast), 0.0, 1e-6);
}

// ---------------------------------------------------------------------------
// SLA bands (Fig. 1c)
// ---------------------------------------------------------------------------

TEST(SlaBandsTest, SplitsByThreshold) {
  EventStream events;
  for (int i = 0; i < 10; ++i) {
    OpEvent e;
    e.timestamp_nanos = i * 100 * kMilli;  // All within the first second.
    e.latency_nanos = (i % 2 == 0) ? kMilli : 10 * kMilli;
    events.push_back(e);
  }
  const auto bands = BuildSlaBands(events, kSecond, 5 * kMilli);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_EQ(bands[0].within_sla, 5u);
  EXPECT_EQ(bands[0].violated, 5u);
  EXPECT_EQ(bands[0].Total(), 10u);
}

TEST(SlaBandsTest, MultipleIntervalsIncludingEmpty) {
  EventStream events;
  OpEvent early;
  early.timestamp_nanos = 100 * kMilli;
  early.latency_nanos = 1;
  events.push_back(early);
  OpEvent late;
  late.timestamp_nanos = 3 * kSecond + 500 * kMilli;
  late.latency_nanos = 1;
  events.push_back(late);
  const auto bands = BuildSlaBands(events, kSecond, kMilli);
  ASSERT_EQ(bands.size(), 4u);
  EXPECT_EQ(bands[0].Total(), 1u);
  EXPECT_EQ(bands[1].Total(), 0u);
  EXPECT_EQ(bands[2].Total(), 0u);
  EXPECT_EQ(bands[3].Total(), 1u);
  EXPECT_EQ(bands[2].start_nanos, 2 * kSecond);
}

TEST(SlaBandsTest, EmptyEvents) {
  EXPECT_TRUE(BuildSlaBands({}, kSecond, kMilli).empty());
}

TEST(CalibrateSlaTest, UsesPercentileTimesMargin) {
  EventStream events;
  for (int i = 1; i <= 100; ++i) {
    OpEvent e;
    e.timestamp_nanos = i;
    e.latency_nanos = i * 1000;  // 1..100 us.
    events.push_back(e);
  }
  const int64_t sla = CalibrateSla(events, 0.99, 2.0);
  // p99 of 1..100us is ~99.01us in the interpolated definition; x2 margin.
  EXPECT_NEAR(static_cast<double>(sla), 198020.0, 3000.0);
}

TEST(CalibrateSlaTest, EmptyFallsBack) {
  EXPECT_EQ(CalibrateSla({}, 0.99, 2.0), kMilli);
}

// ---------------------------------------------------------------------------
// Multi-threshold bands (§V-D2 extension)
// ---------------------------------------------------------------------------

TEST(MultiBandTest, ClassifiesByThreshold) {
  EventStream events;
  const int64_t lats[] = {kMilli / 2, kMilli, 2 * kMilli, 10 * kMilli};
  for (int i = 0; i < 4; ++i) {
    OpEvent e;
    e.timestamp_nanos = i * 10 * kMilli;
    e.latency_nanos = lats[i];
    events.push_back(e);
  }
  const auto bands =
      BuildMultiBands(events, kSecond, {kMilli, 4 * kMilli});
  ASSERT_EQ(bands.size(), 1u);
  ASSERT_EQ(bands[0].counts.size(), 3u);
  EXPECT_EQ(bands[0].counts[0], 2u);  // <= 1 ms (inclusive).
  EXPECT_EQ(bands[0].counts[1], 1u);  // <= 4 ms.
  EXPECT_EQ(bands[0].counts[2], 1u);  // Above.
  EXPECT_EQ(bands[0].Total(), 4u);
}

TEST(MultiBandTest, TotalsMatchSimpleBands) {
  EventStream events = ConstantRate(0, 3, 50, kMilli);
  for (size_t i = 0; i < events.size(); i += 7) {
    events[i].latency_nanos = 20 * kMilli;
  }
  const auto simple = BuildSlaBands(events, kSecond, 5 * kMilli);
  const auto multi = BuildMultiBands(events, kSecond, {kMilli, 5 * kMilli});
  ASSERT_EQ(simple.size(), multi.size());
  for (size_t i = 0; i < simple.size(); ++i) {
    EXPECT_EQ(simple[i].Total(), multi[i].Total());
    // Violations = the class above the SLA threshold.
    EXPECT_EQ(simple[i].violated, multi[i].counts[2]);
  }
}

TEST(MultiBandTest, EmptyEvents) {
  EXPECT_TRUE(BuildMultiBands({}, kSecond, {kMilli}).empty());
}

// ---------------------------------------------------------------------------
// Full metric computation
// ---------------------------------------------------------------------------

TEST(RunMetricsTest, TwoPhaseRunEndToEnd) {
  // Phase 0: 5 s at 100/s, 1 ms latency. Phase 1: 5 s at 50/s with a slow
  // patch at the start (simulating a retraining stall after a shift).
  EventStream events = ConstantRate(0, 5, 100, kMilli, /*phase=*/0);
  EventStream p1 = ConstantRate(5 * kSecond, 5, 50, kMilli, /*phase=*/1);
  // First 100 events of phase 1 are 50x over SLA.
  for (size_t i = 0; i < 100; ++i) p1[i].latency_nanos = 100 * kMilli;
  events.insert(events.end(), p1.begin(), p1.end());

  std::vector<PhaseBoundary> boundaries(2);
  boundaries[0] = {0, 0, 5 * kSecond, false, 500};
  boundaries[1] = {1, 5 * kSecond, 10 * kSecond, false, 250};

  MetricsOptions options;
  options.sla_nanos = 10 * kMilli;
  options.adjustment_window_ops = 200;
  const RunMetrics m = ComputeRunMetrics(events, boundaries, options);

  EXPECT_EQ(m.total_operations, 750u);
  EXPECT_NEAR(m.wall_seconds, 10.0, 0.1);
  EXPECT_NEAR(m.mean_throughput, 75.0, 2.0);
  EXPECT_EQ(m.sla_nanos, 10 * kMilli);
  EXPECT_EQ(m.total_sla_violations, 100u);

  ASSERT_EQ(m.phases.size(), 2u);
  EXPECT_EQ(m.phases[0].operations, 500u);
  EXPECT_EQ(m.phases[0].sla_violations, 0u);
  EXPECT_NEAR(m.phases[0].mean_throughput, 100.0, 1.0);
  EXPECT_EQ(m.phases[1].operations, 250u);
  EXPECT_EQ(m.phases[1].sla_violations, 100u);
  // Adjustment excess: 100 events x (100ms - 10ms) = 9 s.
  EXPECT_NEAR(m.phases[1].adjustment_excess_seconds, 9.0, 0.01);
  EXPECT_NEAR(m.phases[0].adjustment_excess_seconds, 0.0, 1e-9);

  // Box plots: phase 0 sampled at ~100 ops/s in every subinterval.
  EXPECT_NEAR(m.phases[0].throughput_box.median, 100.0, 15.0);
  EXPECT_GT(m.phases[0].throughput_box.count, 10u);

  // Cumulative curve ends at the total.
  EXPECT_EQ(m.cumulative.back().completed, 750u);
  EXPECT_FALSE(m.bands.empty());
}

TEST(RunMetricsTest, AutoSlaCalibrationUsesPhaseZero) {
  EventStream events = ConstantRate(0, 2, 100, kMilli, 0);
  const EventStream p1 = ConstantRate(2 * kSecond, 2, 100, 50 * kMilli, 1);
  events.insert(events.end(), p1.begin(), p1.end());
  std::vector<PhaseBoundary> boundaries(2);
  boundaries[0] = {0, 0, 2 * kSecond, false, 200};
  boundaries[1] = {1, 2 * kSecond, 4 * kSecond, false, 200};

  MetricsOptions options;
  options.sla_nanos = 0;  // Calibrate from phase 0 (1 ms * 2 = 2 ms).
  const RunMetrics m = ComputeRunMetrics(events, boundaries, options);
  EXPECT_NEAR(static_cast<double>(m.sla_nanos), 2.0 * kMilli,
              0.1 * kMilli);
  EXPECT_EQ(m.phases[0].sla_violations, 0u);
  EXPECT_EQ(m.phases[1].sla_violations, 200u);  // All of phase 1 violates.
}

TEST(RunMetricsTest, EmptyRun) {
  const RunMetrics m = ComputeRunMetrics({}, {}, MetricsOptions());
  EXPECT_EQ(m.total_operations, 0u);
  EXPECT_EQ(m.mean_throughput, 0.0);
  EXPECT_TRUE(m.phases.empty());
}

TEST(RunMetricsTest, HoldoutFlagPropagates) {
  const EventStream events = ConstantRate(0, 1, 10, kMilli, 0);
  std::vector<PhaseBoundary> boundaries(1);
  boundaries[0] = {0, 0, kSecond, true, 10};
  const RunMetrics m = ComputeRunMetrics(events, boundaries, MetricsOptions());
  ASSERT_EQ(m.phases.size(), 1u);
  EXPECT_TRUE(m.phases[0].holdout);
}

}  // namespace
}  // namespace lsbench
