#include <gtest/gtest.h>

#include "stats/ascii_chart.h"
#include "sut/tco.h"

namespace lsbench {
namespace {

TEST(TcoPlanTest, TotalsAndRatio) {
  TcoPlan plan;
  plan.throughput = 1000.0;
  plan.hardware_dollars = 500.0;
  plan.training_dollars = 300.0;
  plan.dba_dollars = 200.0;
  EXPECT_DOUBLE_EQ(plan.TotalDollars(), 1000.0);
  EXPECT_DOUBLE_EQ(plan.OpsPerKiloDollar(), 1000.0);
}

TEST(TcoPlanTest, ZeroCostGuard) {
  TcoPlan plan;
  plan.throughput = 1000.0;
  EXPECT_DOUBLE_EQ(plan.OpsPerKiloDollar(), 0.0);
}

TEST(TcoTest, HorizonHardwareDollars) {
  TcoAssumptions a;
  a.years = 2.0;
  a.server_dollars_per_hour = 0.5;
  EXPECT_DOUBLE_EQ(HorizonHardwareDollars(a), 2.0 * 24 * 365 * 0.5);
}

TEST(TcoTest, TraditionalPlanAppliesTierMultiplierAndCost) {
  const DbaCostModel dba = DbaCostModel::Default();
  TcoAssumptions a;  // 3y, 4 passes/y, tier 1 (x1.6, $600 cumulative).
  const TcoPlan plan = MakeTraditionalPlan("t", 1000.0, dba, a);
  EXPECT_DOUBLE_EQ(plan.throughput, 1600.0);
  EXPECT_DOUBLE_EQ(plan.dba_dollars, 600.0 * 4 * 3);
  EXPECT_DOUBLE_EQ(plan.training_dollars, 0.0);
  EXPECT_GT(plan.hardware_dollars, 0.0);
}

TEST(TcoTest, LearnedPlanChargesRecurringTraining) {
  TcoAssumptions a;
  a.pipeline_scale = 1000.0;
  a.retrains_per_year = 10;
  a.years = 2.0;
  // 0.36 s fit * 1000 = 360 s pipeline; CPU at $1/h -> $0.1 per retrain.
  const TcoPlan plan = MakeLearnedPlan("l", 2000.0, 0.36,
                                       HardwareProfile::Cpu(), a);
  EXPECT_NEAR(plan.training_dollars, 0.1 * 10 * 2, 1e-9);
  EXPECT_DOUBLE_EQ(plan.dba_dollars, 0.0);
  EXPECT_DOUBLE_EQ(plan.throughput, 2000.0);
}

TEST(TcoTest, GpuCheaperThanCpuForSameFit) {
  const TcoAssumptions a;
  const TcoPlan cpu =
      MakeLearnedPlan("c", 1.0, 1.0, HardwareProfile::Cpu(), a);
  const TcoPlan gpu =
      MakeLearnedPlan("g", 1.0, 1.0, HardwareProfile::Gpu(), a);
  EXPECT_LT(gpu.training_dollars, cpu.training_dollars);
}

TEST(TcoTest, RenderTableContainsAllPlans) {
  const DbaCostModel dba = DbaCostModel::Default();
  const TcoAssumptions a;
  const std::vector<TcoPlan> plans = {
      MakeTraditionalPlan("traditional", 1000.0, dba, a),
      MakeLearnedPlan("learned_cpu", 1200.0, 0.1, HardwareProfile::Cpu(), a),
  };
  const std::string table = RenderTcoTable(plans);
  EXPECT_NE(table.find("traditional"), std::string::npos);
  EXPECT_NE(table.find("learned_cpu"), std::string::npos);
  EXPECT_NE(table.find("ops/s per k$"), std::string::npos);
}

TEST(MultiBandChartTest, RendersAllClasses) {
  const std::vector<std::vector<double>> columns = {
      {10, 0, 0}, {4, 4, 2}, {0, 0, 10}};
  const std::string chart = RenderMultiBandChart(columns);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("classes bottom-up"), std::string::npos);
}

TEST(MultiBandChartTest, EmptyInput) {
  EXPECT_NE(RenderMultiBandChart({}).find("no data"), std::string::npos);
}

}  // namespace
}  // namespace lsbench
