#include "core/resilience.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/driver.h"
#include "core/run_spec.h"
#include "data/dataset.h"
#include "sut/systems.h"
#include "util/clock.h"

namespace lsbench {
namespace {

// ---------------------------------------------------------------------------
// RetryBackoff
// ---------------------------------------------------------------------------

TEST(RetryBackoffTest, ExponentialScheduleWithoutJitter) {
  ResilienceSpec spec;
  spec.backoff_initial_nanos = 1000;
  spec.backoff_multiplier = 3.0;
  spec.backoff_max_nanos = 20000;
  spec.backoff_jitter = 0.0;
  RetryBackoff backoff(spec, 1);
  EXPECT_EQ(backoff.NextDelayNanos(1), 1000);
  EXPECT_EQ(backoff.NextDelayNanos(2), 3000);
  EXPECT_EQ(backoff.NextDelayNanos(3), 9000);
  EXPECT_EQ(backoff.NextDelayNanos(4), 20000);  // Capped.
  EXPECT_EQ(backoff.NextDelayNanos(5), 20000);
}

TEST(RetryBackoffTest, JitterIsBoundedAndSeedDeterministic) {
  ResilienceSpec spec;
  spec.backoff_initial_nanos = 1000000;
  spec.backoff_multiplier = 2.0;
  spec.backoff_max_nanos = 1000000000;
  spec.backoff_jitter = 0.25;

  auto schedule = [&spec](uint64_t seed) {
    RetryBackoff backoff(spec, seed);
    std::vector<int64_t> delays;
    for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
      delays.push_back(backoff.NextDelayNanos(attempt));
    }
    return delays;
  };

  const auto a = schedule(7);
  const auto b = schedule(7);
  EXPECT_EQ(a, b);  // Same seed, same jittered schedule.
  EXPECT_NE(a, schedule(8));

  for (uint32_t attempt = 1; attempt <= 8; ++attempt) {
    const double base = std::min(
        1000000.0 * std::pow(2.0, attempt - 1), 1000000000.0);
    EXPECT_GE(a[attempt - 1], static_cast<int64_t>(base * 0.75) - 1);
    EXPECT_LE(a[attempt - 1], static_cast<int64_t>(base * 1.25) + 1);
  }
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

ResilienceSpec SmallBreakerSpec() {
  ResilienceSpec spec;
  spec.breaker_enabled = true;
  spec.breaker_window_ops = 10;
  spec.breaker_failure_threshold = 0.5;
  spec.breaker_cooldown_nanos = 1000;
  spec.breaker_half_open_probes = 3;
  return spec;
}

TEST(CircuitBreakerTest, OpensOnlyWhenWindowIsFullAndRateAtThreshold) {
  CircuitBreaker breaker(SmallBreakerSpec());
  // 9 failures: window not yet full, still closed.
  for (int i = 0; i < 9; ++i) breaker.RecordFailure(i);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(9);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_count(), 1u);
  EXPECT_FALSE(breaker.AllowRequest(10));
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  CircuitBreaker breaker(SmallBreakerSpec());
  // 4 failures / 10 = 40% < 50%: closed.
  for (int i = 0; i < 10; ++i) {
    if (i < 4) {
      breaker.RecordFailure(i);
    } else {
      breaker.RecordSuccess(i);
    }
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(11));
}

TEST(CircuitBreakerTest, OpenToHalfOpenToClosed) {
  CircuitBreaker breaker(SmallBreakerSpec());
  for (int i = 0; i < 10; ++i) breaker.RecordFailure(100);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(100));
  EXPECT_FALSE(breaker.AllowRequest(1099));  // Cooldown not yet elapsed.

  // Cooldown elapsed: half-open lets probes through.
  EXPECT_TRUE(breaker.AllowRequest(1100));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(1101);
  breaker.RecordSuccess(1102);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess(1103);  // Third consecutive probe success closes.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.open_count(), 1u);
  // Degraded span covers open + half-open: 100 .. 1103.
  EXPECT_EQ(breaker.DegradedNanos(2000), 1003);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  CircuitBreaker breaker(SmallBreakerSpec());
  for (int i = 0; i < 10; ++i) breaker.RecordFailure(0);
  ASSERT_TRUE(breaker.AllowRequest(1000));  // Half-open.
  breaker.RecordSuccess(1001);
  breaker.RecordFailure(1002);  // Probe failure: back to open.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_count(), 2u);
  EXPECT_FALSE(breaker.AllowRequest(1500));  // Fresh cooldown from 1002.
  EXPECT_TRUE(breaker.AllowRequest(2002));
  // Still degraded since the first open at t=0.
  breaker.RecordSuccess(2003);
  breaker.RecordSuccess(2004);
  breaker.RecordSuccess(2005);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.DegradedNanos(3000), 2005);
}

TEST(CircuitBreakerTest, WindowResetsAfterClose) {
  CircuitBreaker breaker(SmallBreakerSpec());
  for (int i = 0; i < 10; ++i) breaker.RecordFailure(0);
  ASSERT_TRUE(breaker.AllowRequest(1000));
  for (int i = 0; i < 3; ++i) breaker.RecordSuccess(1001 + i);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // The stale failures must not count toward the fresh window: 5 failures
  // into an empty window of 10 leaves the breaker closed.
  for (int i = 0; i < 5; ++i) breaker.RecordFailure(2000 + i);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Driver integration
// ---------------------------------------------------------------------------

/// Fails the first `failures_per_op` Execute attempts of every operation
/// with a transient code, then succeeds — exercises the retry path.
/// `failures_per_op < 0` means every attempt fails forever.
class FlakySystem : public SystemUnderTest {
 public:
  explicit FlakySystem(int failures_per_op)
      : failures_per_op_(failures_per_op) {}

  std::string name() const override { return "flaky_system"; }
  Status Load(const std::vector<KeyValue>&) override { return Status::OK(); }

  OpResult Execute(const Operation&) override {
    OpResult result;
    if (failures_per_op_ < 0 || attempt_ < failures_per_op_) {
      ++attempt_;
      result.status = Status::Unavailable("flaky");
      return result;
    }
    attempt_ = 0;
    result.ok = true;
    return result;
  }

  SutStats GetStats() const override { return {}; }

 private:
  int failures_per_op_;
  int attempt_ = 0;
};

RunSpec SmallSpec(uint64_t seed = 42, uint64_t ops = 500) {
  RunSpec spec;
  spec.name = "resilience_test_" + std::to_string(seed);
  spec.seed = seed;
  DatasetOptions options;
  options.num_keys = 2000;
  options.seed = seed;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));
  PhaseSpec phase;
  phase.name = "steady";
  phase.mix = OperationMix::ReadMostly();
  phase.num_operations = ops;
  spec.phases.push_back(phase);
  spec.interval_nanos = 100000000;
  spec.boxplot_sample_nanos = 10000000;
  return spec;
}

BenchmarkDriver MakeSimDriver(VirtualClock* clock) {
  DriverOptions options;
  options.virtual_clock = clock;
  return BenchmarkDriver(clock, options);
}

TEST(ResilientDriverTest, TransientFailuresAreRetriedToSuccess) {
  VirtualClock clock;
  BenchmarkDriver driver = MakeSimDriver(&clock);
  FlakySystem sut(/*failures_per_op=*/1);
  RunSpec spec = SmallSpec();
  spec.resilience.max_retries = 2;
  spec.resilience.backoff_initial_nanos = 1000;

  const RunResult run = driver.Run(spec, &sut).value();
  EXPECT_EQ(run.metrics.resilience.failed_operations, 0u);
  EXPECT_EQ(run.metrics.resilience.total_retries, run.events.size());
  EXPECT_DOUBLE_EQ(run.metrics.resilience.availability, 1.0);
  for (const OpEvent& e : run.events) {
    EXPECT_EQ(e.retries, 1);
    EXPECT_FALSE(e.failed);
    EXPECT_TRUE(e.ok);
  }
}

TEST(ResilientDriverTest, RetriesExhaustedMarksOperationFailed) {
  VirtualClock clock;
  BenchmarkDriver driver = MakeSimDriver(&clock);
  FlakySystem sut(/*failures_per_op=*/-1);  // Permanently down.
  RunSpec spec = SmallSpec();
  spec.resilience.max_retries = 2;
  spec.resilience.backoff_initial_nanos = 1000;

  const RunResult run = driver.Run(spec, &sut).value();
  EXPECT_EQ(run.metrics.resilience.failed_operations, run.events.size());
  EXPECT_DOUBLE_EQ(run.metrics.resilience.availability, 0.0);
  EXPECT_EQ(run.events[0].retries, 2);
}

TEST(ResilientDriverTest, WithoutRetriesTransientFailureFailsImmediately) {
  VirtualClock clock;
  BenchmarkDriver driver = MakeSimDriver(&clock);
  FlakySystem sut(/*failures_per_op=*/-1);  // Permanently down.
  const RunSpec spec = SmallSpec();  // Resilience defaults: everything off.

  const RunResult run = driver.Run(spec, &sut).value();
  EXPECT_EQ(run.metrics.resilience.failed_operations, run.events.size());
  EXPECT_EQ(run.metrics.resilience.total_retries, 0u);
}

TEST(ResilientDriverTest, SlowServiceBlowsTimeoutBudget) {
  VirtualClock clock;
  DriverOptions options;
  options.virtual_clock = &clock;
  options.virtual_service_nanos = 100000;  // 100 us per op.
  BenchmarkDriver driver(&clock, options);
  BTreeSystem sut;
  RunSpec spec = SmallSpec();
  spec.resilience.op_timeout_nanos = 50000;  // 50 us budget: always blown.

  const RunResult run = driver.Run(spec, &sut).value();
  EXPECT_EQ(run.metrics.resilience.timeouts, run.events.size());
  EXPECT_EQ(run.metrics.resilience.failed_operations, run.events.size());
  for (const OpEvent& e : run.events) {
    EXPECT_TRUE(e.timed_out);
    EXPECT_FALSE(e.ok);
  }

  // A generous budget: no timeouts.
  BenchmarkDriver driver2(&clock, options);
  RunSpec relaxed = SmallSpec(43);
  relaxed.resilience.op_timeout_nanos = 10000000;
  const RunResult run2 = driver2.Run(relaxed, &sut).value();
  EXPECT_EQ(run2.metrics.resilience.timeouts, 0u);
  EXPECT_DOUBLE_EQ(run2.metrics.resilience.availability, 1.0);
}

/// Two-phase spec whose first phase is a total outage (every Execute fails)
/// and whose second phase is healthy.
RunSpec OutageThenRecoverySpec(uint64_t seed = 42) {
  RunSpec spec = SmallSpec(seed, 400);
  PhaseSpec recovery = spec.phases[0];
  recovery.name = "recovery";
  spec.phases.push_back(recovery);

  FaultWindow outage;
  outage.phase = 0;
  outage.execute_fail_rate = 1.0;
  spec.faults.windows = {outage};

  spec.resilience.breaker_enabled = true;
  spec.resilience.breaker_window_ops = 20;
  spec.resilience.breaker_failure_threshold = 0.5;
  spec.resilience.breaker_cooldown_nanos = 50000;  // 50 us.
  spec.resilience.breaker_half_open_probes = 4;
  return spec;
}

TEST(ResilientDriverTest, BreakerShedsDuringOutageAndRecovers) {
  VirtualClock clock;
  BenchmarkDriver driver = MakeSimDriver(&clock);
  BTreeSystem sut;
  const RunSpec spec = OutageThenRecoverySpec();

  const RunResult run = driver.Run(spec, &sut).value();
  const ResilienceMetrics& rm = run.metrics.resilience;
  EXPECT_GT(rm.shed_operations, 0u);
  EXPECT_GE(rm.breaker_opens, 1u);
  EXPECT_GT(rm.degraded_seconds, 0.0);
  EXPECT_GT(run.fault_stats.injected_failures, 0u);

  // Phase 0 is a total outage; phase 1 must mostly recover (the breaker
  // sheds at most one cooldown's worth of ops before its probes succeed
  // and it closes again).
  const PhaseMetrics& outage = run.metrics.phases[0];
  const PhaseMetrics& recovery = run.metrics.phases[1];
  EXPECT_EQ(outage.failed_operations, outage.operations);
  EXPECT_LT(recovery.failed_operations, recovery.operations / 4);
  EXPECT_GT(rm.availability, 0.4);
  EXPECT_LT(rm.availability, 0.51);
}

TEST(ResilientDriverTest, FaultedRunIsByteForByteDeterministic) {
  RunSpec spec = OutageThenRecoverySpec(77);
  spec.faults.windows[0].execute_fail_rate = 0.3;
  spec.faults.windows[0].latency_spike_rate = 0.05;
  spec.faults.windows[0].latency_spike_nanos = 400000;
  spec.resilience.max_retries = 3;
  spec.resilience.backoff_initial_nanos = 20000;
  spec.resilience.backoff_jitter = 0.3;
  spec.resilience.op_timeout_nanos = 2000000;

  auto run_once = [&spec]() {
    VirtualClock clock;
    DriverOptions options;
    options.virtual_clock = &clock;
    BenchmarkDriver driver(&clock, options);
    BTreeSystem sut;
    return driver.Run(spec, &sut).value();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].timestamp_nanos, b.events[i].timestamp_nanos);
    EXPECT_EQ(a.events[i].latency_nanos, b.events[i].latency_nanos);
    EXPECT_EQ(a.events[i].ok, b.events[i].ok);
    EXPECT_EQ(a.events[i].retries, b.events[i].retries);
    EXPECT_EQ(a.events[i].failed, b.events[i].failed);
    EXPECT_EQ(a.events[i].timed_out, b.events[i].timed_out);
    EXPECT_EQ(a.events[i].shed, b.events[i].shed);
  }
  EXPECT_EQ(a.fault_stats.injected_failures, b.fault_stats.injected_failures);
  EXPECT_EQ(a.fault_stats.injected_spikes, b.fault_stats.injected_spikes);
  EXPECT_EQ(a.metrics.resilience.total_retries,
            b.metrics.resilience.total_retries);
  EXPECT_EQ(a.metrics.resilience.shed_operations,
            b.metrics.resilience.shed_operations);
}

TEST(ResilientDriverTest, ResilienceOffMatchesLegacyBehaviour) {
  // Enabling the resilient loop with everything off must not perturb the
  // event stream of a healthy run.
  const RunSpec spec = SmallSpec(11);
  auto run_once = [&spec]() {
    VirtualClock clock;
    DriverOptions options;
    options.virtual_clock = &clock;
    BenchmarkDriver driver(&clock, options);
    BTreeSystem sut;
    return driver.Run(spec, &sut).value();
  };
  const RunResult run = run_once();
  EXPECT_EQ(run.metrics.resilience.failed_operations, 0u);
  EXPECT_EQ(run.metrics.resilience.total_retries, 0u);
  EXPECT_EQ(run.metrics.resilience.shed_operations, 0u);
  EXPECT_EQ(run.metrics.resilience.breaker_opens, 0u);
  EXPECT_DOUBLE_EQ(run.metrics.resilience.availability, 1.0);
}

TEST(ResilientDriverTest, FailedTrainingIsRecorded) {
  VirtualClock clock;
  BenchmarkDriver driver = MakeSimDriver(&clock);
  LearnedKvSystem sut;
  RunSpec spec = SmallSpec(13);
  FaultWindow w;
  w.fail_train = true;
  w.train_hang_nanos = 50000000;  // 50 ms hang before failing.
  spec.faults.windows = {w};

  const RunResult run = driver.Run(spec, &sut).value();
  ASSERT_EQ(run.train_events.size(), 1u);
  EXPECT_FALSE(run.train_events[0].ok);
  EXPECT_GT(run.train_events[0].Seconds(), 0.04);
  EXPECT_EQ(run.metrics.resilience.failed_trains, 1u);
  EXPECT_EQ(run.fault_stats.failed_trains, 1u);
  EXPECT_EQ(run.fault_stats.hung_trains, 1u);
}

}  // namespace
}  // namespace lsbench
