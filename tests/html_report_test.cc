#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/driver.h"
#include "core/specialization.h"
#include "data/dataset.h"
#include "report/html.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

class HtmlReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BenchmarkDriver::ResetHoldoutRegistryForTesting();
    spec_.name = "html_test <run>";  // Angle brackets must be escaped.
    DatasetOptions options;
    options.num_keys = 2000;
    spec_.datasets.push_back(GenerateDataset(UniformUnit(), options));
    PhaseSpec phase;
    phase.name = "p0";
    phase.mix = OperationMix::ReadMostly();
    phase.num_operations = 800;
    spec_.phases.push_back(phase);
    phase.name = "p1";
    phase.holdout = true;
    spec_.phases.push_back(phase);
    spec_.interval_nanos = 20000000;
    spec_.boxplot_sample_nanos = 2000000;

    DriverOptions driver_options;
    driver_options.virtual_clock = &clock_;
    BenchmarkDriver driver(&clock_, driver_options);
    BTreeSystem sut;
    run_ = driver.Run(spec_, &sut).value();
    specialization_ = BuildSpecializationReport(spec_, run_);
  }

  VirtualClock clock_;
  RunSpec spec_;
  RunResult run_;
  SpecializationReport specialization_;
};

TEST_F(HtmlReportTest, ContainsStructureAndCharts) {
  const std::string html = RenderHtmlReport(run_, specialization_);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // Three SVG charts.
  size_t svg_count = 0;
  for (size_t pos = html.find("<svg"); pos != std::string::npos;
       pos = html.find("<svg", pos + 1)) {
    ++svg_count;
  }
  EXPECT_EQ(svg_count, 3u);
  EXPECT_NE(html.find("Fig. 1a"), std::string::npos);
  EXPECT_NE(html.find("Fig. 1b"), std::string::npos);
  EXPECT_NE(html.find("Fig. 1c"), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos);
  EXPECT_NE(html.find("btree_system"), std::string::npos);
}

TEST_F(HtmlReportTest, EscapesHtmlInNames) {
  const std::string html = RenderHtmlReport(run_, specialization_);
  EXPECT_NE(html.find("html_test &lt;run&gt;"), std::string::npos);
  EXPECT_EQ(html.find("html_test <run>"), std::string::npos);
}

TEST_F(HtmlReportTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "lsbench_report.html";
  ASSERT_TRUE(WriteHtmlReport(run_, specialization_, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), RenderHtmlReport(run_, specialization_));
  std::remove(path.c_str());
}

TEST_F(HtmlReportTest, WriteToBadPathFails) {
  EXPECT_TRUE(WriteHtmlReport(run_, specialization_, "/nonexistent/x.html")
                  .IsIoError());
}

}  // namespace
}  // namespace lsbench
