#include <gtest/gtest.h>

#include "core/regression.h"
#include "data/dataset.h"
#include "sut/systems.h"

namespace lsbench {
namespace {

constexpr int64_t kMilli = 1000000;

/// Builds a RunResult with the given aggregates (synthetic events so the
/// histogram has real content).
RunResult MakeRun(double ops_per_second, int64_t latency_nanos,
                  uint64_t violations, int phases = 2) {
  RunResult run;
  run.sut_name = "synthetic";
  const uint64_t total_ops = 10000;
  for (uint64_t i = 0; i < total_ops; ++i) {
    OpEvent e;
    e.timestamp_nanos =
        static_cast<int64_t>(static_cast<double>(i) / ops_per_second * 1e9);
    e.latency_nanos = latency_nanos;
    e.phase = static_cast<int32_t>(i * phases / total_ops);
    run.events.push_back(e);
  }
  run.metrics.total_operations = total_ops;
  run.metrics.mean_throughput = ops_per_second;
  run.metrics.total_sla_violations = violations;
  for (const OpEvent& e : run.events) {
    run.metrics.overall_latency.Record(static_cast<double>(e.latency_nanos));
  }
  run.metrics.phases.resize(phases);
  for (int p = 0; p < phases; ++p) {
    run.metrics.phases[p].phase = p;
    run.metrics.phases[p].mean_throughput = ops_per_second;
  }
  return run;
}

TEST(RegressionTest, IdenticalRunsPass) {
  const RunResult base = MakeRun(10000, kMilli, 5);
  const RegressionReport report = CheckRegression(base, base);
  EXPECT_TRUE(report.Passed());
  EXPECT_NE(RenderRegressionReport(report).find("PASS"), std::string::npos);
}

TEST(RegressionTest, ThroughputDropFlagged) {
  const RunResult base = MakeRun(10000, kMilli, 5);
  const RunResult cand = MakeRun(8000, kMilli, 5);  // -20%.
  const RegressionReport report = CheckRegression(base, cand);
  ASSERT_FALSE(report.Passed());
  bool found = false;
  for (const RegressionFinding& f : report.findings) {
    if (f.metric == "mean_throughput") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RegressionTest, SmallThroughputWobbleTolerated) {
  const RunResult base = MakeRun(10000, kMilli, 5);
  const RunResult cand = MakeRun(9700, kMilli, 5);  // -3% < 5% tolerance.
  EXPECT_TRUE(CheckRegression(base, cand).Passed());
}

TEST(RegressionTest, LatencyGrowthFlagged) {
  const RunResult base = MakeRun(10000, kMilli, 5);
  const RunResult cand = MakeRun(10000, 2 * kMilli, 5);  // p99 x2.
  const RegressionReport report = CheckRegression(base, cand);
  ASSERT_FALSE(report.Passed());
  EXPECT_EQ(report.findings[0].metric, "p99_latency_nanos");
}

TEST(RegressionTest, ViolationSlackAbsorbsSmallCounts) {
  const RunResult base = MakeRun(10000, kMilli, 2);
  const RunResult cand = MakeRun(10000, kMilli, 9);  // 2 -> 9, within slack.
  EXPECT_TRUE(CheckRegression(base, cand).Passed());
  const RunResult bad = MakeRun(10000, kMilli, 500);
  EXPECT_FALSE(CheckRegression(base, bad).Passed());
}

TEST(RegressionTest, PhaseLocalRegressionCaughtDespiteHealthyMean) {
  const RunResult base = MakeRun(10000, kMilli, 0);
  RunResult cand = MakeRun(10000, kMilli, 0);
  // Phase 1 collapses while the global mean stays put (Lesson 2 shape).
  cand.metrics.phases[1].mean_throughput = 4000;
  const RegressionReport report = CheckRegression(base, cand);
  ASSERT_FALSE(report.Passed());
  EXPECT_EQ(report.findings[0].metric, "phase1_throughput");
}

TEST(RegressionTest, PhaseCountMismatchShortCircuits) {
  const RunResult base = MakeRun(10000, kMilli, 0, /*phases=*/2);
  const RunResult cand = MakeRun(10000, kMilli, 0, /*phases=*/3);
  const RegressionReport report = CheckRegression(base, cand);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].metric, "phase_count");
}

TEST(RegressionTest, TrainingBlowupFlagged) {
  RunResult base = MakeRun(10000, kMilli, 0);
  base.train_events.push_back({0, 1000000000, 100});  // 1 s.
  RunResult cand = MakeRun(10000, kMilli, 0);
  cand.train_events.push_back({0, 3000000000, 100});  // 3 s.
  const RegressionReport report = CheckRegression(base, cand);
  ASSERT_FALSE(report.Passed());
  EXPECT_EQ(report.findings[0].metric, "train_seconds");
  EXPECT_NE(RenderRegressionReport(report).find("FAIL"), std::string::npos);
}

TEST(RegressionTest, EndToEndSameSpecSameSystemPasses) {
  // Two simulated runs of the same spec on the same system are identical;
  // the guard must pass. A run with a slower simulated service time must
  // fail the throughput floor.
  BenchmarkDriver::ResetHoldoutRegistryForTesting();
  RunSpec spec;
  spec.name = "regression_e2e";
  DatasetOptions options;
  options.num_keys = 2000;
  spec.datasets.push_back(GenerateDataset(UniformUnit(), options));
  PhaseSpec phase;
  phase.mix = OperationMix::ReadMostly();
  phase.num_operations = 1000;
  spec.phases.push_back(phase);

  auto run_with_service_time = [&](int64_t nanos) {
    VirtualClock clock;
    DriverOptions driver_options;
    driver_options.virtual_clock = &clock;
    driver_options.virtual_service_nanos = nanos;
    BenchmarkDriver driver(&clock, driver_options);
    BTreeSystem sut;
    return driver.Run(spec, &sut).value();
  };
  const RunResult baseline = run_with_service_time(100000);
  const RunResult same = run_with_service_time(100000);
  EXPECT_TRUE(CheckRegression(baseline, same).Passed());

  const RunResult slower = run_with_service_time(150000);  // -33% tput.
  const RegressionReport report = CheckRegression(baseline, slower);
  EXPECT_FALSE(report.Passed());
}

}  // namespace
}  // namespace lsbench
